"""Per-figure experiment configurations (Section 5 of the paper).

Every public function returns an :class:`~repro.experiments.harness.ExperimentConfig`
that :func:`~repro.experiments.harness.run_experiment` can execute, and is
driven by the corresponding ``benchmarks/bench_fig*.py`` target.  The
defaults follow the paper: 1 000-point synthetic datasets, cluster counts
{1, 2, 4, 8, 16, 128}, an 800-point buffer unless stated otherwise,
``alpha = 0.25`` and ``rho = 0.30``.

Scaling note: the synthetic workloads match the paper exactly; the
railway-like stand-in for the real dataset defaults to a smaller cardinality
(5 000 segments instead of ~35 000) so the benchmark suite stays fast --
pass ``railway_size=35_000`` for a full-scale run.  The *shape* of the
comparison is unaffected (the dataset remains two orders of magnitude
denser than the synthetic side and strongly corridor-clustered).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.datasets.dataset import SpatialDataset
from repro.datasets.workloads import PAPER_CLUSTER_COUNTS, WorkloadSpec
from repro.experiments.harness import ExperimentConfig
from repro.network.config import NetworkConfig

__all__ = [
    "figure_6a",
    "figure_6b",
    "figure_7a",
    "figure_7b",
    "figure_8a",
    "figure_8b",
    "ablation_fanout",
    "ablation_bucket",
    "ablation_tariffs",
]

#: Default distance-join threshold used by all synthetic experiments.  The
#: paper does not state its epsilon; 0.005 of the unit data space keeps the
#: result cardinality (tens to hundreds of pairs out of 1000 x 1000 points)
#: in the regime the paper's byte totals imply.
DEFAULT_EPSILON = 0.005
#: Default seeds averaged per data point (the paper averages 10 runs).
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)


def _synthetic_workload(
    epsilon: float, buffer_size: int, bucket: bool = False
) -> "callable":
    """Workload factory: two independent clustered 1 000-point datasets."""

    def factory(x: object, seed: int) -> Tuple[SpatialDataset, SpatialDataset, WorkloadSpec]:
        clusters = int(x)  # x-axis is the cluster count
        spec = WorkloadSpec(
            clusters=clusters,
            seed=seed,
            epsilon=epsilon,
            buffer_size=buffer_size,
            bucket_queries=bucket,
        )
        from repro.experiments.harness import build_datasets

        dataset_r, dataset_s = build_datasets(spec)
        return dataset_r, dataset_s, spec

    return factory


def _real_workload(
    epsilon: float,
    buffer_size: int,
    railway_size: int,
    bucket: bool = True,
) -> "callable":
    """Workload factory: railway-like R joined with a clustered synthetic S."""

    def factory(x: object, seed: int) -> Tuple[SpatialDataset, SpatialDataset, WorkloadSpec]:
        clusters = int(x)
        spec = WorkloadSpec(
            r_kind="railway",
            s_kind="clustered",
            r_size=railway_size,
            s_size=1000,
            clusters=clusters,
            seed=seed,
            epsilon=epsilon,
            buffer_size=buffer_size,
            bucket_queries=bucket,
        )
        from repro.experiments.harness import build_datasets

        dataset_r, dataset_s = build_datasets(spec)
        return dataset_r, dataset_s, spec

    return factory


# --------------------------------------------------------------------------- #
# Figure 6: parameter sensitivity
# --------------------------------------------------------------------------- #


def figure_6a(
    alphas: Sequence[float] = (0.15, 0.20, 0.25, 0.30),
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentConfig:
    """Figure 6(a): effect of the uniformity tolerance ``alpha`` on UpJoin."""
    series: Dict[str, Dict[str, object]] = {
        f"alpha={a:g}": {"algorithm": "upjoin", "alpha": a} for a in alphas
    }
    return ExperimentConfig(
        name="figure_6a",
        description="UpJoin transferred bytes vs. cluster count for several alpha values",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_synthetic_workload(epsilon, buffer_size),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


def figure_6b(
    rhos: Sequence[float] = (0.30, 0.50, 1.00, 2.00, 3.50),
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentConfig:
    """Figure 6(b): effect of the density threshold ``rho`` on SrJoin.

    The paper expresses rho as a percentage of the average density
    (30%, 50%, 100%, 200%, 350%); here it is the equivalent fraction.
    """
    series: Dict[str, Dict[str, object]] = {
        f"rho={int(r * 100)}%": {"algorithm": "srjoin", "rho": r} for r in rhos
    }
    return ExperimentConfig(
        name="figure_6b",
        description="SrJoin transferred bytes vs. cluster count for several rho values",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_synthetic_workload(epsilon, buffer_size),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


# --------------------------------------------------------------------------- #
# Figure 7: algorithm comparison on synthetic data
# --------------------------------------------------------------------------- #


def _comparison_config(
    name: str,
    buffer_size: int,
    cluster_counts: Sequence[int],
    epsilon: float,
    seeds: Sequence[int],
    bucket: bool = False,
) -> ExperimentConfig:
    series: Dict[str, Dict[str, object]] = {
        "srJoin": {"algorithm": "srjoin"},
        "upJoin": {"algorithm": "upjoin"},
        "mobiJoin": {"algorithm": "mobijoin"},
    }
    return ExperimentConfig(
        name=name,
        description=f"MobiJoin vs UpJoin vs SrJoin, buffer={buffer_size} points",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_synthetic_workload(epsilon, buffer_size, bucket=bucket),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


def figure_7a(
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentConfig:
    """Figure 7(a): the three algorithms with a 100-point buffer."""
    return _comparison_config("figure_7a", 100, cluster_counts, epsilon, seeds)


def figure_7b(
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentConfig:
    """Figure 7(b): the three algorithms with an 800-point buffer."""
    return _comparison_config("figure_7b", 800, cluster_counts, epsilon, seeds)


# --------------------------------------------------------------------------- #
# Figure 8: real (railway-like) data
# --------------------------------------------------------------------------- #


def figure_8a(
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    railway_size: int = 5000,
    seeds: Sequence[int] = (0, 1),
) -> ExperimentConfig:
    """Figure 8(a): bucket-query MobiJoin vs UpJoin vs SrJoin on real-like data."""
    series: Dict[str, Dict[str, object]] = {
        "srJoin": {"algorithm": "srjoin", "bucket_queries": True},
        "upJoin": {"algorithm": "upjoin", "bucket_queries": True},
        "mobiJoin": {"algorithm": "mobijoin", "bucket_queries": True},
    }
    return ExperimentConfig(
        name="figure_8a",
        description="Railway-like dataset joined with 1000-point synthetic (bucket queries)",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_real_workload(epsilon, buffer_size, railway_size, bucket=True),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


def figure_8b(
    cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    railway_size: int = 5000,
    seeds: Sequence[int] = (0, 1),
) -> ExperimentConfig:
    """Figure 8(b): UpJoin and SrJoin (bucket) vs the indexed SemiJoin."""
    series: Dict[str, Dict[str, object]] = {
        "upJoin": {"algorithm": "upjoin", "bucket_queries": True},
        "srJoin": {"algorithm": "srjoin", "bucket_queries": True},
        "semiJoin": {"algorithm": "semijoin"},
    }
    return ExperimentConfig(
        name="figure_8b",
        description="UpJoin/SrJoin vs SemiJoin on the railway-like dataset",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_real_workload(epsilon, buffer_size, railway_size, bucket=True),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
        indexed=True,
    )


# --------------------------------------------------------------------------- #
# Ablations (DESIGN.md E7-E9 and the extensions)
# --------------------------------------------------------------------------- #


def ablation_fanout(
    fanouts: Sequence[int] = (2, 4, 8),
    cluster_counts: Sequence[int] = (1, 8, 128),
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    seeds: Sequence[int] = (0, 1),
) -> ExperimentConfig:
    """Section 3.2 discussion: increasing MobiJoin's grid fan-out ``k``."""
    series: Dict[str, Dict[str, object]] = {}
    for k in fanouts:
        series[f"mobiJoin k={k}"] = {"algorithm": "mobijoin", "grid_k": k}
    # AlgorithmParameters carries grid_k; thread it through run kwargs.
    for cfg in series.values():
        cfg["alpha"] = 0.25
    return ExperimentConfig(
        name="ablation_fanout",
        description="MobiJoin with larger repartitioning fan-out",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_synthetic_workload(epsilon, buffer_size),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


def ablation_bucket(
    cluster_counts: Sequence[int] = (1, 8, 128),
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    railway_size: int = 5000,
    seeds: Sequence[int] = (0,),
) -> ExperimentConfig:
    """Section 5.2 footnote: bucket vs per-object NLSJ probing."""
    series: Dict[str, Dict[str, object]] = {
        "upJoin (bucket)": {"algorithm": "upjoin", "bucket_queries": True},
        "upJoin (per-object)": {"algorithm": "upjoin", "bucket_queries": False},
        "srJoin (bucket)": {"algorithm": "srjoin", "bucket_queries": True},
        "srJoin (per-object)": {"algorithm": "srjoin", "bucket_queries": False},
    }
    return ExperimentConfig(
        name="ablation_bucket",
        description="Effect of bucket query submission on the real-like workload",
        x_values=tuple(cluster_counts),
        x_label="clusters",
        series=series,
        workload=_real_workload(epsilon, buffer_size, railway_size, bucket=False),
        seeds=tuple(seeds),
        buffer_size=buffer_size,
    )


def ablation_tariffs(
    tariff_ratios: Sequence[float] = (1.0, 2.0, 5.0),
    cluster_counts: Sequence[int] = (1, 8, 128),
    epsilon: float = DEFAULT_EPSILON,
    buffer_size: int = 800,
    seeds: Sequence[int] = (0, 1),
) -> Dict[float, ExperimentConfig]:
    """Extension: asymmetric per-byte tariffs (``b_R != b_S``).

    The paper fixes ``b_R = b_S``; this ablation makes server S ``ratio``
    times more expensive and checks that the adaptive algorithms shift work
    towards the cheaper server.  Returns one config per ratio because the
    network config is experiment-wide.
    """
    configs: Dict[float, ExperimentConfig] = {}
    for ratio in tariff_ratios:
        net = NetworkConfig(tariff_r=1.0, tariff_s=ratio)
        series: Dict[str, Dict[str, object]] = {
            "upJoin": {"algorithm": "upjoin"},
            "srJoin": {"algorithm": "srjoin"},
            "mobiJoin": {"algorithm": "mobijoin"},
        }
        configs[ratio] = ExperimentConfig(
            name=f"ablation_tariffs_x{ratio:g}",
            description=f"Asymmetric tariffs: b_S = {ratio:g} * b_R",
            x_values=tuple(cluster_counts),
            x_label="clusters",
            series=series,
            workload=_synthetic_workload(epsilon, buffer_size),
            seeds=tuple(seeds),
            buffer_size=buffer_size,
            config=net,
        )
    return configs
