"""Plain-text rendering of experiment results.

The benchmarks print these tables so that a ``pytest benchmarks/`` run
leaves a readable record of every reproduced figure (series per row,
x-values per column, mean transferred bytes in the cells), mirroring the
layout of the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentResult

__all__ = ["format_table", "render_experiment", "render_shape_checks"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, show_pairs: bool = False) -> str:
    """Render one experiment as a bytes table (plus an optional pairs table)."""
    cfg = result.config
    headers = [cfg.x_label] + [str(x) for x in cfg.x_values]
    rows: List[List[object]] = []
    for label, series in result.series.items():
        rows.append([label] + [round(b) for b in series.mean_bytes])
    out = format_table(
        headers,
        rows,
        title=f"{cfg.name}: {cfg.description}\n(total transferred bytes, mean over {len(cfg.seeds)} seeds)",
    )
    if show_pairs:
        pair_rows: List[List[object]] = []
        for label, series in result.series.items():
            pair_rows.append([label] + [round(p, 1) for p in series.mean_pairs])
        out += "\n\n" + format_table(
            headers, pair_rows, title="result pairs (must agree across series)"
        )
    return out


def render_shape_checks(checks: Dict[str, bool]) -> str:
    """Render the qualitative shape assertions of a figure reproduction."""
    lines = ["shape checks:"]
    for name, ok in checks.items():
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
