"""The hand-constructed adversarial layouts of Figures 2 and 4.

The paper motivates UpJoin and SrJoin with three drawn examples:

* **Figure 2(a)** -- ``|R| >> |S|`` with completely disjoint occupied
  regions: MobiJoin's cost model picks NLSJ (downloading all of S and
  probing R), although one more partitioning step would prune everything.
* **Figure 2(b)** -- four matching clusters placed so that a slightly
  larger buffer makes MobiJoin switch from pruning to a wholesale HBSJ,
  *doubling* the transferred bytes when memory grows.
* **Figure 4** -- two datasets with identical cluster layouts: UpJoin keeps
  repartitioning (both look skewed) although no pruning is possible, so the
  aggregate queries are wasted; SrJoin notices the similarity and stops.

These layouts are used by the ablation benchmark E9 and by integration
tests that verify the qualitative claims (e.g. MobiJoin's cost really does
increase when the buffer grows on the Figure 2(b) layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api import AdHocJoinSession
from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.datasets.synthetic import gaussian_mixture, uniform

__all__ = [
    "AdversarialCase",
    "figure2a_layout",
    "figure2b_layout",
    "figure4_layout",
    "run_adversarial_case",
]

#: Tight cluster spread used by the drawn examples (clusters occupy roughly
#: one cell of the paper's 4 x 4 illustration grid).
_CLUSTER_STD = 0.04


@dataclass(frozen=True)
class AdversarialCase:
    """A named two-dataset layout plus the join parameters to use."""

    name: str
    dataset_r: SpatialDataset
    dataset_s: SpatialDataset
    epsilon: float
    description: str


def figure2a_layout(seed: int = 0) -> AdversarialCase:
    """Figure 2(a): a large R and a small S occupying different regions.

    R fills the left half of the space densely; S has one small cluster in
    the bottom-right corner.  No pairs exist, and one level of partitioning
    prunes the whole space -- but MobiJoin's estimate prefers NLSJ with S as
    the outer relation.
    """
    dataset_r = gaussian_mixture(
        n=1600,
        centers=[(0.125, 0.125), (0.125, 0.375), (0.375, 0.125), (0.375, 0.375),
                 (0.125, 0.625), (0.125, 0.875), (0.375, 0.625), (0.375, 0.875)],
        std=_CLUSTER_STD,
        seed=seed,
        name="fig2a-R",
    )
    dataset_s = gaussian_mixture(
        n=100,
        centers=[(0.875, 0.125)],
        std=_CLUSTER_STD,
        seed=seed + 1,
        name="fig2a-S",
    )
    return AdversarialCase(
        name="figure_2a",
        dataset_r=dataset_r,
        dataset_s=dataset_s,
        epsilon=0.02,
        description="|R| >> |S| in disjoint regions: NLSJ is a trap, pruning wins",
    )


def figure2b_layout(seed: int = 0, points_per_cluster: int = 500) -> AdversarialCase:
    """Figure 2(b): more memory makes MobiJoin strictly worse.

    Both datasets place two tight clusters of ``points_per_cluster`` points
    inside the *same* quadrant of the space, but at pairwise-disjoint spots,
    so nothing actually joins.  With a buffer smaller than the total object
    count MobiJoin partitions, prunes the three empty quadrants and then the
    disjoint sub-clusters; with a buffer large enough for HBSJ it simply
    downloads both datasets wholesale -- the paper's "by increasing the
    available resources, the transfer cost is doubled" pathology.
    """
    centers_r = [(0.60, 0.15), (0.85, 0.40)]
    centers_s = [(0.85, 0.15), (0.60, 0.40)]
    dataset_r = gaussian_mixture(
        n=2 * points_per_cluster,
        centers=centers_r,
        std=_CLUSTER_STD,
        seed=seed,
        name="fig2b-R",
    )
    dataset_s = gaussian_mixture(
        n=2 * points_per_cluster,
        centers=centers_s,
        std=_CLUSTER_STD,
        seed=seed + 1,
        name="fig2b-S",
    )
    return AdversarialCase(
        name="figure_2b",
        dataset_r=dataset_r,
        dataset_s=dataset_s,
        epsilon=0.02,
        description="matching clusters: a larger buffer doubles MobiJoin's cost",
    )


def figure4_layout(seed: int = 0, points_per_cluster: int = 300) -> AdversarialCase:
    """Figure 4: both datasets share the same three-cluster layout.

    Repartitioning can prune nothing, so UpJoin's extra aggregate queries
    are pure overhead while SrJoin's similarity test stops the recursion.
    """
    centers = [(0.25, 0.75), (0.75, 0.75), (0.25, 0.25)]
    dataset_r = gaussian_mixture(
        n=3 * points_per_cluster,
        centers=centers,
        std=_CLUSTER_STD,
        seed=seed,
        name="fig4-R",
    )
    dataset_s = gaussian_mixture(
        n=3 * points_per_cluster,
        centers=centers,
        std=_CLUSTER_STD,
        seed=seed + 1,
        name="fig4-S",
    )
    return AdversarialCase(
        name="figure_4",
        dataset_r=dataset_r,
        dataset_s=dataset_s,
        epsilon=0.02,
        description="identical cluster layouts: similarity-aware refinement wins",
    )


def run_adversarial_case(
    case: AdversarialCase,
    algorithms: Tuple[str, ...] = ("mobijoin", "upjoin", "srjoin"),
    buffer_size: int = 800,
    bucket_queries: bool = False,
) -> Dict[str, JoinResult]:
    """Run several algorithms on one adversarial layout; returns name -> result."""
    session = AdHocJoinSession(
        case.dataset_r, case.dataset_s, buffer_size=buffer_size, indexed=False
    )
    return {
        name: session.run(
            algorithm=name, epsilon=case.epsilon, bucket_queries=bucket_queries
        )
        for name in algorithms
    }
