"""Experiment harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.experiments.harness` -- generic sweep machinery: build the
  workload, run one or more algorithms over a list of seeds, aggregate the
  byte totals.
* :mod:`repro.experiments.figures` -- one configuration function per paper
  figure (6a, 6b, 7a, 7b, 8a, 8b) plus the ablations listed in DESIGN.md.
* :mod:`repro.experiments.report` -- plain-text table rendering of the
  results (the benchmarks print these).
* :mod:`repro.experiments.adversarial` -- the hand-constructed layouts of
  Figures 2 and 4 that expose MobiJoin's and UpJoin's weaknesses.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    SeriesResult,
    WorkloadCache,
    WorkloadCell,
    run_experiment,
    run_single,
)
from repro.experiments.figures import (
    figure_6a,
    figure_6b,
    figure_7a,
    figure_7b,
    figure_8a,
    figure_8b,
    ablation_bucket,
    ablation_fanout,
    ablation_tariffs,
)
from repro.experiments.report import format_table, render_experiment
from repro.experiments.adversarial import (
    figure2a_layout,
    figure2b_layout,
    figure4_layout,
    run_adversarial_case,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "SeriesResult",
    "WorkloadCache",
    "WorkloadCell",
    "run_experiment",
    "run_single",
    "figure_6a",
    "figure_6b",
    "figure_7a",
    "figure_7b",
    "figure_8a",
    "figure_8b",
    "ablation_bucket",
    "ablation_fanout",
    "ablation_tariffs",
    "format_table",
    "render_experiment",
    "figure2a_layout",
    "figure2b_layout",
    "figure4_layout",
    "run_adversarial_case",
]
