"""The abstract server interface: the only contract clients can rely on.

The paper assumes "services allow only a limited set of queries through a
standard interface"; this module is that interface.  Both the in-process
:class:`~repro.server.server.SpatialServer` and the metered
:class:`~repro.server.remote.RemoteServer` proxy implement it, so join
algorithms can be unit-tested against a local server and then run unchanged
against the metered proxies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["SpatialServerInterface"]


class SpatialServerInterface(ABC):
    """The narrow, non-cooperative server protocol."""

    #: Server name used in traces ("R" or "S" by convention).
    name: str

    # ------------------------------------------------------------------ #
    # the three primitive queries of Section 3
    # ------------------------------------------------------------------ #

    @abstractmethod
    def window(self, window: Rect) -> Tuple[np.ndarray, np.ndarray]:
        """WINDOW query: ``(mbrs, oids)`` of objects intersecting ``window``."""

    @abstractmethod
    def count(self, window: Rect) -> int:
        """COUNT query: number of objects intersecting ``window``."""

    @abstractmethod
    def range(self, center: Point, epsilon: float) -> Tuple[np.ndarray, np.ndarray]:
        """epsilon-RANGE query: objects within ``epsilon`` of ``center``.

        The paper notes that when a server lacks a native range query it can
        be simulated by a window query with side ``2 * epsilon``; servers in
        this reproduction implement the exact circular semantics, and the
        simulation fallback is available via :meth:`range_as_window`.
        """

    # ------------------------------------------------------------------ #
    # optional extensions used by the cost model / bucket NLSJ
    # ------------------------------------------------------------------ #

    @abstractmethod
    def bucket_range(
        self,
        centers: Sequence[Point],
        epsilon: float,
        radii: "Sequence[float] | None" = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bucket epsilon-RANGE: many probes in one request.

        Returns ``(mbrs, oids, probe_index)`` where ``probe_index[i]`` is
        the index of the probe that produced result row ``i``.  Results are
        *not* deduplicated across probes -- the server answers each probe
        independently, exactly as a sequence of range queries would, and the
        client pays the (possibly duplicated) transfer bytes.  ``radii``
        optionally overrides the radius per probe (extended probe objects of
        different sizes).
        """

    @abstractmethod
    def average_mbr_area(self, window: Rect) -> float:
        """Scalar aggregate: average object-MBR area inside ``window``."""

    # ------------------------------------------------------------------ #
    # batch entry points (part of the client contract)
    # ------------------------------------------------------------------ #
    #
    # The physical operators ship query batches so implementations can
    # amortise evaluation over one index descent.  The defaults below fall
    # back to a loop of scalar queries -- semantically (and, for metered
    # implementations, byte-wise) the batch forms are always equivalent to
    # that loop, which is the invariant ``tests/test_batch_queries.py``
    # pins for the built-in servers.

    def window_batch(
        self, windows: Sequence[Rect]
    ) -> "list[Tuple[np.ndarray, np.ndarray]]":
        """Answer many WINDOW queries (default: a loop of :meth:`window`)."""
        return [self.window(w) for w in windows]

    def count_batch(self, windows: Sequence[Rect]) -> "list[int]":
        """Answer many COUNT queries (default: a loop of :meth:`count`)."""
        return [self.count(w) for w in windows]

    def range_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> "list[Tuple[np.ndarray, np.ndarray]]":
        """Answer many epsilon-RANGE queries (default: a loop of :meth:`range`)."""
        return [self.range(c, float(r)) for c, r in zip(centers, radii)]

    # ------------------------------------------------------------------ #
    # conveniences shared by every implementation
    # ------------------------------------------------------------------ #

    def range_as_window(self, center: Point, epsilon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Simulate an epsilon-RANGE query with a ``2 epsilon`` window query."""
        probe = Rect(
            center.x - epsilon, center.y - epsilon, center.x + epsilon, center.y + epsilon
        )
        return self.window(probe)

    def is_empty(self, window: Rect) -> bool:
        """True when no object intersects ``window`` (one COUNT query)."""
        return self.count(window) == 0
