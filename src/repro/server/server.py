"""The spatial server proper.

A :class:`SpatialServer` owns one :class:`~repro.datasets.dataset.SpatialDataset`
and answers the primitive queries from an aggregate R-tree (COUNT and the
area aggregate) and from its underlying R-tree (WINDOW, RANGE).  The server
also keeps simple query statistics, which the experiments report to show
how many aggregate vs. data queries each algorithm issued.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.aggregate_rtree import AggregateRTree
from repro.server.interface import SpatialServerInterface

__all__ = ["SpatialServer", "ServerQueryStats"]

#: Monotonic registration ids: every server *build* (not view) gets a fresh
#: uid, so ``breaker_token`` stays unique across the process lifetime even
#: when Python recycles ``id()`` values of garbage-collected servers.
_SERVER_UIDS = itertools.count(1)


@dataclass
class ServerQueryStats:
    """Counters of queries answered by a server."""

    window_queries: int = 0
    count_queries: int = 0
    range_queries: int = 0
    bucket_range_queries: int = 0
    bucket_range_probes: int = 0
    aggregate_queries: int = 0
    objects_returned: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "window_queries": self.window_queries,
            "count_queries": self.count_queries,
            "range_queries": self.range_queries,
            "bucket_range_queries": self.bucket_range_queries,
            "bucket_range_probes": self.bucket_range_probes,
            "aggregate_queries": self.aggregate_queries,
            "objects_returned": self.objects_returned,
        }

    def reset(self) -> None:
        self.window_queries = 0
        self.count_queries = 0
        self.range_queries = 0
        self.bucket_range_queries = 0
        self.bucket_range_probes = 0
        self.aggregate_queries = 0
        self.objects_returned = 0


class SpatialServer(SpatialServerInterface):
    """An index-backed, non-cooperative spatial data server.

    Parameters
    ----------
    dataset:
        The published dataset.
    name:
        Server name used in traces (conventionally ``"R"`` or ``"S"``).
    index_fanout:
        Fanout of the internal aggregate R-tree.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        name: str = "server",
        index_fanout: int = 16,
        index: Optional[AggregateRTree] = None,
    ) -> None:
        self.dataset = dataset
        self.name = name
        self.server_uid = next(_SERVER_UIDS)
        self.stats = ServerQueryStats()
        # Array-native bulk load straight off the dataset's MBR array; no
        # per-object Rect materialisation.  ``index`` lets callers inject a
        # pre-built (or legacy-built) aggregate tree.
        self._index = (
            index
            if index is not None
            else AggregateRTree.from_mbr_array(
                dataset.mbrs, dataset.oids, max_entries=index_fanout
            )
        )
        # Sorted oid -> row lookup for assembling result payloads without a
        # per-object dict probe.
        oids = np.asarray(dataset.oids, dtype=np.int64)
        self._row_order = np.argsort(oids, kind="stable")
        self._oids_sorted = oids[self._row_order]

    def __len__(self) -> int:
        return len(self.dataset)

    def shared_view(self) -> "SpatialServer":
        """A server sharing this one's immutable state, with fresh statistics.

        The dataset, the aggregate R-tree (and its flattened snapshots) and
        the oid lookup tables are shared by reference -- all read-only
        during queries -- while the query-statistics counters are private
        to the view.  The query broker hands every in-flight query its own
        view of a cached server build, so concurrent queries meter their
        server statistics in full isolation without re-running the index
        construction.
        """
        view = SpatialServer.__new__(SpatialServer)
        view.dataset = self.dataset
        view.name = self.name
        # Views share the build's identity: a breaker opened against the
        # build must shed traffic from every view of it.
        view.server_uid = self.server_uid
        view.stats = ServerQueryStats()
        view._index = self._index
        view._row_order = self._row_order
        view._oids_sorted = self._oids_sorted
        return view

    def replica_view(self, name: str) -> "SpatialServer":
        """A *replica* of this server: shared build, independent identity.

        Like :meth:`shared_view`, the dataset, index and oid lookup tables
        are shared by reference -- replicas publish one immutable shard
        dataset build.  Unlike a view, a replica gets its own ``name``, a
        *fresh* ``server_uid`` (and therefore its own ``breaker_token``)
        and private statistics: replicas fail, breaker-trip and meter
        independently even though they serve identical answers.
        """
        replica = SpatialServer.__new__(SpatialServer)
        replica.dataset = self.dataset
        replica.name = name
        replica.server_uid = next(_SERVER_UIDS)
        replica.stats = ServerQueryStats()
        replica._index = self._index
        replica._row_order = self._row_order
        replica._oids_sorted = self._oids_sorted
        return replica

    @property
    def breaker_token(self) -> Tuple[str, int]:
        """Stable identity for circuit-breaker bookkeeping.

        ``(name, server_uid)`` survives garbage collection: a *new* server
        that happens to reuse a dead server's ``id()`` (or its name) gets a
        fresh uid and therefore a closed breaker.
        """
        return (self.name, self.server_uid)

    def breaker_units(self) -> Tuple["SpatialServer", ...]:
        """The independently-breakable servers behind this one (itself)."""
        return (self,)

    def breaker_groups(self) -> Tuple[Tuple["SpatialServer", ...], ...]:
        """Breaker units grouped by failover domain.

        A plain server is its own (only) replica: one group of one unit.
        Replicated fleets override this so the broker can distinguish "one
        replica cooling" (route around it) from "every replica of a shard
        cooling" (shed the query).
        """
        return ((self,),)

    def evaluate_count_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Answer COUNTs without touching query statistics.

        The broker's wave executor evaluates each coalesced batch once on
        the shared build and attributes per-query statistics separately via
        the prefetch path; this entry point keeps that evaluation free of
        stat side effects.
        """
        return self._index.count_batch(windows)

    def prime_snapshot(self) -> None:
        """Force lazy index snapshots so shared views are read-only."""
        self._index.rtree.flat_view()

    @property
    def index(self) -> AggregateRTree:
        """The internal index.

        This is *server private* state: the mobile-join algorithms never
        touch it.  Only the SemiJoin comparator (via
        :class:`~repro.server.remote.IndexedRemoteServer`) and the tests
        read it.
        """
        return self._index

    # ------------------------------------------------------------------ #
    # primitive queries
    # ------------------------------------------------------------------ #

    def window(self, window: Rect) -> Tuple[np.ndarray, np.ndarray]:
        self.stats.window_queries += 1
        oids = self._index.window_query(window)
        return self._materialise(oids)

    def window_batch(self, windows: Sequence[Rect]) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Answer a batch of WINDOW queries in one index descent.

        Statistics are updated exactly as if :meth:`window` had been called
        once per window; the per-window payloads are slices of the flat
        assembly of :meth:`window_batch_flat`.
        """
        windows = list(windows)
        mbrs, oids, bounds = self.window_batch_flat(windows)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(windows))
        ]

    def window_batch_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Answer a batch of WINDOW queries, response assembled in one pass.

        Returns ``(mbrs, oids, bounds)`` in CSR form: the concatenated
        payloads of all windows in window order, window ``i`` owning rows
        ``bounds[i]:bounds[i+1]`` (``len(bounds) == W + 1``).  All payload
        rows are materialised with *one* sorted-oid lookup over the
        concatenated result instead of one per window; statistics are
        identical to a loop of :meth:`window` calls.
        """
        windows = list(windows)
        self.stats.window_queries += len(windows)
        bounds, oid_arr = self._index.window_query_batch_flat(windows)
        mbrs, oid_arr = self._materialise(oid_arr)
        return mbrs, oid_arr, bounds

    def count(self, window: Rect) -> int:
        self.stats.count_queries += 1
        return self._index.count(window)

    def count_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Answer a batch of COUNT queries in one aggregate-tree descent."""
        self.stats.count_queries += len(windows)
        return self._index.count_batch(windows)

    def range(self, center: Point, epsilon: float) -> Tuple[np.ndarray, np.ndarray]:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.stats.range_queries += 1
        oids = self._index.range_query(center, epsilon)
        return self._materialise(oids)

    def range_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Answer a batch of RANGE queries in one index descent.

        Statistics are updated exactly as if :meth:`range` had been called
        once per probe; the per-probe payloads are slices of the flat
        assembly of :meth:`range_batch_flat`.
        """
        mbrs, oids, bounds = self.range_batch_flat(centers, radii)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(centers))
        ]

    def range_batch_flat(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Answer a batch of RANGE queries, response assembled in one pass.

        Returns ``(mbrs, oids, bounds)`` in CSR form: the concatenated
        payloads of all probes in probe order, probe ``i`` owning rows
        ``bounds[i]:bounds[i+1]`` (``len(bounds) == P + 1``).  All payload
        rows are materialised with *one* sorted-oid lookup over the
        concatenated result instead of one per probe; statistics are
        identical to a loop of :meth:`range` calls.
        """
        per_probe = [float(r) for r in radii]
        if any(r < 0 for r in per_probe):
            raise ValueError("epsilon must be non-negative")
        self.stats.range_queries += len(centers)
        bounds, oid_arr = self._index.range_query_batch_flat(list(centers), per_probe)
        mbrs, oid_arr = self._materialise(oid_arr)
        return mbrs, oid_arr, bounds

    def bucket_range(
        self,
        centers: Sequence[Point],
        epsilon: float,
        radii: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not centers:
            raise ValueError("bucket_range needs at least one probe point")
        if radii is not None and len(radii) != len(centers):
            raise ValueError("radii must be parallel to centers")
        self.stats.bucket_range_queries += 1
        self.stats.bucket_range_probes += len(centers)
        per_probe = [epsilon] * len(centers) if radii is None else [float(r) for r in radii]
        bounds, oid_arr = self._index.range_query_batch_flat(list(centers), per_probe)
        counts = np.diff(bounds).astype(np.int64)
        mbrs, oid_arr = self._materialise(oid_arr, count_stats=False)
        probes = np.repeat(np.arange(len(centers), dtype=np.int64), counts)
        self.stats.objects_returned += int(oid_arr.shape[0])
        return mbrs, oid_arr, probes

    def average_mbr_area(self, window: Rect) -> float:
        self.stats.aggregate_queries += 1
        return self._index.average_mbr_area(window)

    # ------------------------------------------------------------------ #

    def _materialise(
        self, oids: Sequence[int], count_stats: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        oid_arr = np.asarray(oids, dtype=np.int64)
        if oid_arr.shape[0]:
            pos = np.searchsorted(self._oids_sorted, oid_arr)
            if np.any(pos >= self._oids_sorted.shape[0]) or np.any(
                self._oids_sorted[np.minimum(pos, self._oids_sorted.shape[0] - 1)]
                != oid_arr
            ):
                raise KeyError("unknown oid in materialisation request")
            mbrs = self.dataset.mbrs[self._row_order[pos]]
        else:
            mbrs = np.empty((0, 4))
        if count_stats:
            self.stats.objects_returned += int(oid_arr.shape[0])
        return mbrs, oid_arr
