"""Metered client-side proxies for remote servers.

The mobile device never talks to a :class:`~repro.server.server.SpatialServer`
directly; it holds a :class:`RemoteServer`, which forwards every call over
a byte-accounting :class:`~repro.network.channel.Channel`:

* the request is accounted on the uplink (query string, plus probe objects
  for bucket range queries),
* the response is accounted on the downlink (objects or a scalar).

``RemoteServer`` therefore *is* the measurement harness: the byte totals of
every experiment are read off its channels after the join finishes.

:class:`IndexedRemoteServer` additionally exposes the R-tree level MBRs and
a "forwarded window" operation; only the SemiJoin comparator uses it (the
paper assumes R-tree-published servers for that algorithm alone).

Resilience (PR 7).  A proxy may carry a :class:`ResilienceController`: every
metered exchange then runs through a retry loop against the deterministic
fault stream of :mod:`repro.network.faults`.  The protocol is built on
**idempotent request ids** -- the server caches the answer of the first
evaluation of a request id, so a retried exchange re-sends bytes but never
re-evaluates (and never re-bumps server statistics).  In the simulation
that shows up as an *evaluate-once* structure: each method evaluates the
backing server exactly once, then hands the channel-accounting closure to
the controller, which accounts failed/duplicated attempts on the channel's
retry lane and the one successful attempt on the primary lane.  The primary
ledger of a fault-injected run is therefore structurally identical to the
fault-free run; only the retry lane and the resilience counters differ.

Replication (PR 9).  A shard published on R > 1 replicas is fronted by a
:class:`ReplicatedRemoteServer`: one channel (and one deterministic fault
substream) per replica, with every exchange routed through a pluggable
:class:`ReplicaRouter`.  When an exchange exhausts its retries on one
replica, the proxy *fails over*: the identical request is replayed against
a sibling replica (idempotent request ids make the replay safe).  The
failed attempts were already accounted on the losing replica's retry lane,
and the winning replica accounts the exchange on its primary lane -- so the
shard-level merged primary ledger stays bit-identical to the unreplicated
fault-free run under any recoverable plan.  Only when every replica of a
shard fails the same exchange does the proxy surface a typed
:class:`~repro.errors.ServerUnavailable` for the whole shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChannelFault, QueryTimeout, RetryExhausted, ServerUnavailable
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.channel import Channel
from repro.network.config import NetworkConfig
from repro.network.faults import FaultInjector, FaultKind, FaultPlan, RetryPolicy
from repro.network.messages import (
    AggregateQuery,
    BucketRangeQuery,
    CountQuery,
    MessageKind,
    ObjectPayload,
    RangeQuery,
    ScalarResponse,
    WindowQuery,
)
from repro.server.interface import SpatialServerInterface
from repro.server.server import ServerQueryStats, SpatialServer
from repro.server.sharded import ShardedSpatialServer

__all__ = [
    "RemoteServer",
    "IndexedRemoteServer",
    "ReplicatedRemoteServer",
    "ShardedRemoteServer",
    "ResilienceController",
    "ReplicaRouter",
    "HealthyFirstRouter",
    "RoundRobinRouter",
    "LeastRetryBytesRouter",
    "ROUTER_POLICIES",
    "make_router",
    "ServerPair",
]


class ResilienceController:
    """Per-query retry/timeout state shared by both of a session's proxies.

    Parameters
    ----------
    faults:
        The :class:`FaultPlan` to inject, or ``None`` for a reliable
        network (exchanges account directly, nothing is drawn).
    retry:
        Client retry policy; defaults to :class:`RetryPolicy()`.
    deadline_s:
        Optional per-query deadline budget in *simulated* seconds.  Stall
        latencies and retry backoffs advance the clock; crossing the budget
        raises :class:`QueryTimeout`.

    One controller per query: its injectors are keyed by channel (server)
    name, so the fault stream each server sees depends only on the plan
    seed and that query's own exchange sequence -- the determinism contract
    that makes broker and standalone execution draw identical events.
    """

    def __init__(
        self,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.plan = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline_s = deadline_s
        self.elapsed_s = 0.0
        self.exchanges = 0
        self.attempts = 0
        self.retries = 0
        self.drops = 0
        self.stalls = 0
        self.duplicates_discarded = 0
        self.unavailable = 0
        self.failovers = 0
        self._failover_events: List[Tuple[str, str, str, str]] = []
        self._injectors: Dict[str, FaultInjector] = {}
        self._channels: List[Channel] = []
        # Observability hooks -- strictly read-only.  ``trace_span`` is the
        # owning query's span (set by the algorithm at run start); fault,
        # retry and failover events append there.  ``metrics`` is an
        # optional MetricsRegistry.  Both stay None by default, and the
        # healthy no-injector fast path in :meth:`exchange` never touches
        # them.
        self.trace_span = None
        self.metrics = None

    # ------------------------------------------------------------------ #

    def register(self, channel: Channel) -> None:
        """Attach a channel so its retry lane shows up in :meth:`summary`."""
        self._channels.append(channel)

    def injector(self, server_name: str) -> Optional[FaultInjector]:
        """The (memoised) fault stream of one server's channel."""
        if self.plan is None:
            return None
        injector = self._injectors.get(server_name)
        if injector is None:
            injector = self.plan.injector(server_name)
            self._injectors[server_name] = injector
        return injector

    def exchange(self, channel: Channel, label: str, account: Callable[[], None]) -> None:
        """Run one logical exchange through the fault/retry protocol.

        ``account`` performs the exchange's channel accounting (request
        record(s) then response record(s)); the server evaluation already
        happened, exactly once, before this call.  On success ``account``
        runs on the primary lane; every failed or duplicated attempt runs
        it inside a :meth:`~Channel.fault_lane` scope instead, so its bytes
        land on the retry lane (with the direction that never hit the wire
        suppressed).
        """
        self.exchanges += 1
        injector = self.injector(channel.name)
        if injector is None:
            self.attempts += 1
            account()
            return
        failures = 0
        while True:
            self.attempts += 1
            event = injector.next_event(label)
            kind = event.kind
            if kind is FaultKind.OK:
                account()
                return
            if kind is FaultKind.STALL:
                self.stalls += 1
                account()
                self._note_fault("stall", channel.name, label)
                self._advance(event.latency_s, label)
                return
            if kind is FaultKind.DUPLICATE:
                # The exchange succeeded; the response was delivered twice.
                # The duplicate carries an already-seen request id and is
                # discarded -- its downlink bytes land on the retry lane.
                self.duplicates_discarded += 1
                account()
                with channel.fault_lane("down"):
                    account()
                self._note_fault("duplicate", channel.name, label)
                return
            if kind is FaultKind.DISCONNECT:
                with channel.fault_lane("up"):
                    account()
                self._note_fault("disconnect", channel.name, label)
                raise ChannelFault(
                    f"link to server {channel.name!r} lost mid-query "
                    f"(exchange {event.op_index}, {label!r})",
                    server=channel.name,
                    op_index=event.op_index,
                    kind="disconnect",
                    recoverable=False,
                )
            # DROP (round trip burned) or UNAVAILABLE (request went out,
            # nobody answered): account the attempt on the retry lane,
            # then back off and retry -- or give up.
            if kind is FaultKind.DROP:
                self.drops += 1
                scope = "both"
            else:
                self.unavailable += 1
                scope = "up"
            with channel.fault_lane(scope):
                account()
            self._note_fault(kind.value, channel.name, label)
            failures += 1
            if failures >= self.retry.max_attempts:
                fault = ChannelFault(
                    f"exchange {label!r} to server {channel.name!r} failed "
                    f"{failures} times ({kind.value})",
                    server=channel.name,
                    op_index=event.op_index,
                    kind=kind.value,
                    recoverable=True,
                )
                if kind is FaultKind.UNAVAILABLE:
                    raise ServerUnavailable(
                        f"server {channel.name!r} unavailable after {failures} "
                        f"attempts at exchange {event.op_index} ({label!r})",
                        server=channel.name,
                        op_index=event.op_index,
                        kind="unavailable",
                        recoverable=True,
                    )
                raise RetryExhausted(
                    f"retry budget exhausted on {label!r} to server "
                    f"{channel.name!r} ({failures} attempts, last: {kind.value})",
                    last_fault=fault,
                )
            self.retries += 1
            self._note_retry(channel.name, label, failures)
            self._advance(self.retry.backoff_for(failures), label)

    def reset(self) -> None:
        """Return the controller to its seeded origin for a fresh run.

        Clears the simulated clock, all counters and the per-server fault
        streams -- a session reused across runs draws the same event
        sequence every time, exactly like a newly built stack.
        """
        self.elapsed_s = 0.0
        self.exchanges = 0
        self.attempts = 0
        self.retries = 0
        self.drops = 0
        self.stalls = 0
        self.duplicates_discarded = 0
        self.unavailable = 0
        self.failovers = 0
        self._failover_events.clear()
        self._injectors.clear()

    def _note_fault(self, kind: str, server: str, label: str) -> None:
        """Emit one fault event to the observability hooks (if attached).

        Only the fault branches of :meth:`exchange` call this, so healthy
        exchanges -- the hot path -- never pay for the checks.
        """
        span = self.trace_span
        if span is not None:
            span.event("fault", sim=self.elapsed_s, kind=kind, server=server, label=label)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_faults_total",
                "Fault events drawn on the metered channels, by kind and server",
            ).inc(kind=kind, server=server)

    def _note_retry(self, server: str, label: str, attempt: int) -> None:
        span = self.trace_span
        if span is not None:
            span.event(
                "retry", sim=self.elapsed_s, server=server, label=label, attempt=attempt
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_retries_total",
                "Exchange retries after recoverable faults, by server",
            ).inc(server=server)

    def _advance(self, seconds: float, label: str) -> None:
        """Advance the simulated clock, enforcing the deadline budget."""
        self.elapsed_s += seconds
        if self.deadline_s is not None and self.elapsed_s > self.deadline_s:
            raise QueryTimeout(
                f"query deadline budget exceeded during {label!r}: "
                f"{self.elapsed_s:.3f}s simulated > {self.deadline_s:.3f}s budget"
            )

    def note_failover(self, shard: str, replica: str, label: str, kind: str) -> None:
        """Record one mid-query failover (a replica exchange abandoned).

        Called by :class:`ReplicatedRemoteServer` after an exchange
        exhausted its retries on one replica and is about to replay on a
        sibling; the broker reads the per-replica events to charge the
        right breaker units.
        """
        self.failovers += 1
        self._failover_events.append((shard, replica, label, kind))
        span = self.trace_span
        if span is not None:
            span.event(
                "failover",
                sim=self.elapsed_s,
                shard=shard,
                replica=replica,
                label=label,
                kind=kind,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_failovers_total",
                "Mid-query failovers between replicas, by shard and replica",
            ).inc(shard=shard, replica=replica)

    # ------------------------------------------------------------------ #

    def fault_events(self) -> Dict[str, Tuple[Tuple[int, str, str], ...]]:
        """Per-server drawn fault sequences (the determinism fingerprint)."""
        return {name: inj.event_tuples() for name, inj in sorted(self._injectors.items())}

    def summary(self) -> Dict[str, object]:
        """Counters + retry-lane totals, attached to ``JoinResult.resilience``."""
        return {
            "deadline_s": self.deadline_s,
            "elapsed_s": self.elapsed_s,
            "exchanges": self.exchanges,
            "attempts": self.attempts,
            "retries": self.retries,
            "drops": self.drops,
            "stalls": self.stalls,
            "duplicates_discarded": self.duplicates_discarded,
            "unavailable": self.unavailable,
            "failovers": self.failovers,
            "failover_events": tuple(self._failover_events),
            "retry_bytes": {ch.name: ch.retry_bytes for ch in self._channels},
            "fault_events": self.fault_events(),
        }


class RemoteServer(SpatialServerInterface):
    """A metered proxy in front of a :class:`SpatialServer`.

    Parameters
    ----------
    server:
        The backing server.
    channel:
        The accounting channel for this connection.  One channel per
        server; the experiment reads the totals from it.
    resilience:
        Optional shared :class:`ResilienceController`; when present every
        exchange runs through its fault/retry protocol.
    """

    def __init__(
        self,
        server: SpatialServer,
        channel: Channel,
        resilience: Optional[ResilienceController] = None,
    ) -> None:
        self._server = server
        self.channel = channel
        self.name = server.name
        self.resilience = resilience

    # ------------------------------------------------------------------ #

    def _exchange(self, label: str, account: Callable[[Channel], None]) -> None:
        """Account one logical exchange, via the resilience layer if any.

        The server evaluation must already have happened (exactly once)
        when this is called; ``account`` only writes channel records.  It
        takes the channel to write to as a parameter so a replicated proxy
        can replay the identical exchange onto a sibling replica's channel
        (see :class:`ReplicatedRemoteServer`); a single-channel proxy
        always passes its own channel.
        """
        if self.resilience is None:
            account(self.channel)
        else:
            self.resilience.exchange(
                self.channel, label, lambda: account(self.channel)
            )

    @property
    def config(self) -> NetworkConfig:
        return self.channel.config

    @property
    def tariff(self) -> float:
        return self.channel.tariff

    @property
    def backing_server(self) -> SpatialServer:
        """The server behind the proxy (tests and oracles only)."""
        return self._server

    # ------------------------------------------------------------------ #
    # metered primitive queries
    # ------------------------------------------------------------------ #

    def window(self, window: Rect) -> Tuple[np.ndarray, np.ndarray]:
        mbrs, oids = self._server.window(window)

        def account(channel: Channel) -> None:
            channel.send_query(WindowQuery(window), label="window")
            channel.send_response(ObjectPayload(mbrs, oids), label="window-result")

        self._exchange("window", account)
        return mbrs, oids

    def count(self, window: Rect) -> int:
        value = self._server.count(window)

        def account(channel: Channel) -> None:
            channel.send_query(CountQuery(window), label="count")
            channel.send_response(ScalarResponse(float(value)), label="count-result")

        self._exchange("count", account)
        return value

    def window_batch(
        self, windows: Sequence[Rect]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Issue many WINDOW queries, evaluated server-side in one descent.

        Each window is accounted as its own query/response exchange, so the
        wire bytes are bit-identical to a loop of :meth:`window` calls; the
        per-window payloads are slices of the flat assembly of
        :meth:`window_batch_flat`.
        """
        windows = list(windows)
        mbrs, oids, bounds = self.window_batch_flat(windows)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(windows))
        ]

    def window_batch_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Issue many WINDOW queries; responses assembled flat in one pass.

        Returns ``(mbrs, oids, bounds)`` in CSR form, all window payloads
        concatenated in window order (window ``i`` owns rows
        ``bounds[i]:bounds[i+1]``).  The ledger is bit-identical to a loop
        of :meth:`window` calls: one uplink query record per window and one
        downlink object payload per window, sized from the per-window row
        counts -- only the server-side evaluation and the response assembly
        are batched.
        """
        windows = list(windows)
        mbrs, oids, bounds = self._server.window_batch_flat(windows)
        if windows:

            def account(channel: Channel) -> None:
                channel.send_uniform_batch(
                    WindowQuery(windows[0]), len(windows), direction="up", label="window"
                )
                object_bytes = self.config.object_bytes
                channel.send_payload_batch(
                    MessageKind.OBJECTS,
                    [int(c) * object_bytes for c in np.diff(bounds).tolist()],
                    direction="down",
                    label="window-result",
                )

            # An empty batch never hits the wire, so it draws no fault
            # event -- keeps fault streams aligned across execution paths.
            self._exchange("window-batch", account)
        return mbrs, oids, bounds

    def count_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Issue many COUNT queries, evaluated server-side in one descent.

        Accounting is bit-identical to a loop of :meth:`count` calls.
        """
        windows = list(windows)
        values = self._server.count_batch(windows)
        self._account_count_batch(windows)
        return values

    def count_batch_prefetched(
        self, windows: Sequence[Rect], values: Sequence[int]
    ) -> List[int]:
        """Attribute a COUNT batch answered by a coalesced exchange.

        The query broker's wave driver evaluates the COUNT windows of every
        in-flight query that targets the same backing server in one
        snapshot descent, then attributes each query's share back to its
        own connection through this method.  The per-query ledger --
        backing-server statistics, traffic records, byte totals -- is
        exactly what :meth:`count_batch` over the same windows would have
        produced; only the evaluation was shared.
        """
        windows = list(windows)
        values = [int(v) for v in values]
        if len(values) != len(windows):
            raise ValueError("values must be parallel to windows")
        self._server.stats.count_queries += len(windows)
        self._account_count_batch(windows)
        return values

    def _account_count_batch(self, windows: List[Rect]) -> None:
        """The shared ledger write of one batched COUNT exchange.

        Routed through :meth:`_exchange` with one label for both the
        standalone (:meth:`count_batch`) and broker-coalesced
        (:meth:`count_batch_prefetched`) paths, so a query draws the same
        fault events whichever way it executes.  Empty batches never hit
        the wire and draw nothing.
        """
        if not windows:
            return

        def account(channel: Channel) -> None:
            channel.send_uniform_batch(
                CountQuery(windows[0]), len(windows), direction="up", label="count"
            )
            channel.send_uniform_batch(
                ScalarResponse(0.0),
                len(windows),
                direction="down",
                label="count-result",
            )

        self._exchange("count-batch", account)

    def range(self, center: Point, epsilon: float) -> Tuple[np.ndarray, np.ndarray]:
        mbrs, oids = self._server.range(center, epsilon)

        def account(channel: Channel) -> None:
            channel.send_query(RangeQuery(center, epsilon), label="range")
            channel.send_response(ObjectPayload(mbrs, oids), label="range-result")

        self._exchange("range", account)
        return mbrs, oids

    def range_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Issue many RANGE probes, evaluated server-side in one descent.

        Unlike :meth:`bucket_range` this is *not* the bucket protocol: every
        probe is metered as its own query/response exchange, bit-identical
        to a loop of :meth:`range` calls.  The per-probe payloads are
        slices of the flat assembly of :meth:`range_batch_flat`.
        """
        mbrs, oids, bounds = self.range_batch_flat(centers, radii)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(centers))
        ]

    def range_batch_flat(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Issue many RANGE probes; responses assembled flat in one pass.

        Returns ``(mbrs, oids, bounds)`` in CSR form, all probe payloads
        concatenated in probe order (probe ``i`` owns rows
        ``bounds[i]:bounds[i+1]``).  The ledger is bit-identical to a loop
        of :meth:`range` calls: one uplink query record per probe and one
        downlink object payload per probe, sized from the per-probe row
        counts -- only the server-side evaluation and the response assembly
        are batched.
        """
        mbrs, oids, bounds = self._server.range_batch_flat(centers, radii)
        if len(centers):

            def account(channel: Channel) -> None:
                channel.send_uniform_batch(
                    RangeQuery(centers[0], float(radii[0])),
                    len(centers),
                    direction="up",
                    label="range",
                )
                object_bytes = self.config.object_bytes
                channel.send_payload_batch(
                    MessageKind.OBJECTS,
                    [int(c) * object_bytes for c in np.diff(bounds).tolist()],
                    direction="down",
                    label="range-result",
                )

            self._exchange("range-batch", account)
        return mbrs, oids, bounds

    def bucket_range(
        self,
        centers: Sequence[Point],
        epsilon: float,
        radii: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        centers = tuple(centers)
        radii_tuple = tuple(float(r) for r in radii) if radii is not None else None
        mbrs, oids, probes = self._server.bucket_range(centers, epsilon, radii_tuple)

        def account(channel: Channel) -> None:
            channel.send_query(
                BucketRangeQuery(centers, epsilon, radii_tuple), label="bucket-range"
            )
            # Eq. 5 of the paper charges one extra object-sized separator per
            # probe in the bucket response (the "+ Bobj" term).
            channel.send_response(
                ObjectPayload(mbrs, oids, per_probe_overhead_objects=len(centers)),
                label="bucket-range-result",
            )

        self._exchange("bucket-range", account)
        return mbrs, oids, probes

    def average_mbr_area(self, window: Rect) -> float:
        value = self._server.average_mbr_area(window)

        def account(channel: Channel) -> None:
            channel.send_query(
                AggregateQuery(window, "avg_mbr_area"), label="aggregate"
            )
            channel.send_response(ScalarResponse(value), label="aggregate-result")

        self._exchange("aggregate", account)
        return value

    # ------------------------------------------------------------------ #
    # connection introspection (one channel here; a shard fleet has many)
    # ------------------------------------------------------------------ #

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All accounting channels behind this connection."""
        return (self.channel,)

    def reset_channels(self) -> None:
        """Zero every channel ledger of this connection."""
        self.channel.reset()

    def channel_snapshot(self) -> Dict[str, object]:
        """The connection's ledger snapshot (merged over all channels)."""
        return self.channel.snapshot()

    def ledger_fingerprint(self) -> Tuple:
        """Bit-exact fingerprint of the connection's primary-lane ledger."""
        return self.channel.ledger_fingerprint()

    def server_stats(self) -> Dict[str, int]:
        """The backing server's query-statistics counters."""
        return self._server.stats.as_dict()

    def stat_objects(self) -> Tuple[ServerQueryStats, ...]:
        """The mutable statistics objects behind this connection (audits)."""
        return (self._server.stats,)

    def total_bytes(self) -> int:
        """Total wire bytes moved over this connection so far."""
        return self.channel.total_bytes

    def total_cost(self) -> float:
        """Tariff-weighted cost of this connection so far."""
        return self.channel.total_cost


class IndexedRemoteServer(RemoteServer):
    """A remote server that additionally publishes its R-tree (SemiJoin only).

    The paper's SemiJoin comparator assumes both datasets are R-tree
    indexed and that the intermediate-level MBRs can be shipped between the
    servers (through the PDA, since the servers do not cooperate).  Those
    privileged operations are metered exactly like ordinary queries.
    """

    def tree_height(self) -> int:
        """Height of the server's R-tree (metadata; accounted as an aggregate)."""
        height = self._server.index.rtree.height

        def account(channel: Channel) -> None:
            channel.send_query(
                AggregateQuery(self._server.dataset.bounds(), "count"),
                label="tree-height",
            )
            channel.send_response(
                ScalarResponse(float(height)), label="tree-height-result"
            )

        self._exchange("tree-height", account)
        return height

    def object_count(self) -> int:
        """Total object count (metadata; accounted as an aggregate exchange)."""
        n = len(self._server.dataset)

        def account(channel: Channel) -> None:
            channel.send_query(
                AggregateQuery(self._server.dataset.bounds(), "count"), label="size"
            )
            channel.send_response(ScalarResponse(float(n)), label="size-result")

        self._exchange("size", account)
        return n

    def level_mbrs(self) -> List[Rect]:
        """Download the MBRs of the second-to-last R-tree level.

        The response is accounted as one object payload whose size is the
        number of MBRs (an MBR weighs one ``B_obj``, like any other spatial
        object on the wire).
        """
        rects = self._server.index.rtree.second_to_last_level_mbrs()
        if rects:
            mbrs = np.array([r.as_tuple() for r in rects], dtype=np.float64)
        else:
            mbrs = np.empty((0, 4))
        oids = np.arange(mbrs.shape[0], dtype=np.int64)

        def account(channel: Channel) -> None:
            channel.send_query(
                AggregateQuery(self._server.dataset.bounds(), "count"),
                label="level-mbrs",
            )
            channel.send_response(
                ObjectPayload(mbrs, oids), label="level-mbrs-result"
            )

        self._exchange("level-mbrs", account)
        return rects

    def upload_windows_and_collect(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ship a batch of windows (MBRs) to the server; get back all objects inside.

        This is the SemiJoin step "all the objects of R inside these MBRs
        will be transferred back" with the PDA acting as mediator: the
        upload is charged as an object payload (one ``B_obj`` per MBR) and
        the response as a normal object payload.  Duplicate objects that
        fall in several windows are returned once (the server deduplicates
        before shipping, as the original algorithm does).
        """
        return self._relay_windows(windows, flat=False)

    def upload_windows_and_collect_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat-assembly form of :meth:`upload_windows_and_collect`.

        Ships the same query and response payloads (the ledger is
        byte-identical); the server side reads the CSR window batch
        directly, so the relayed object set is assembled over one
        concatenated array instead of a per-window payload list that is
        vstacked client-side.  This is the batch path of the SemiJoin
        comparator; the per-window relay is its bit-identical scalar
        reference.
        """
        return self._relay_windows(windows, flat=True)

    def _relay_windows(
        self, windows: Sequence[Rect], flat: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The shared protocol of both relay forms.

        Only the server-side row assembly differs between the scalar and
        flat paths; the metering (query upload, deduplicated object
        response) is written once so the two can never drift apart.
        """
        if not windows:
            return np.empty((0, 4)), np.empty(0, dtype=np.int64)
        win_arr = np.array([w.as_tuple() for w in windows], dtype=np.float64)
        if flat:
            all_mbrs, all_oids, _ = self._server.window_batch_flat(list(windows))
        else:
            payloads = self._server.window_batch(list(windows))
            all_mbrs = (
                np.vstack([m for m, _ in payloads]) if payloads else np.empty((0, 4))
            )
            all_oids = (
                np.concatenate([o for _, o in payloads])
                if payloads
                else np.empty(0, dtype=np.int64)
            )
        # Deduplicate objects returned by several windows, keeping the
        # first-seen order (as the original per-window relay did).
        _, first = np.unique(all_oids, return_index=True)
        keep = np.sort(first)
        mbrs_out = all_mbrs[keep]
        oids_out = all_oids[keep]

        def account(channel: Channel) -> None:
            channel.send_query(
                BucketRangeQuery(
                    tuple(Point(float(w[0]), float(w[1])) for w in win_arr), 0.0
                ),
                label="semijoin-windows",
            )
            # The probe payload above only accounts the query string + one
            # object per window; exactly what shipping the MBR list costs.
            channel.send_response(
                ObjectPayload(mbrs_out, oids_out), label="semijoin-objects"
            )

        self._exchange("semijoin-windows", account)
        return mbrs_out, oids_out

    def upload_objects_and_join(
        self,
        mbrs: np.ndarray,
        oids: np.ndarray,
        epsilon: float,
    ) -> List[Tuple[int, int]]:
        """Ship foreign objects to this server and let it perform the final join.

        This is SemiJoin's last step: the qualifying objects of the small
        dataset are uploaded (through the PDA) and the server joins them
        against its own data with an in-memory kernel, returning
        ``(foreign_oid, local_oid)`` pairs.  The upload is charged as an
        object payload, the result as one object-sized row per pair.
        """
        from repro.geometry.predicates import (  # local import: avoids a cycle
            IntersectionPredicate,
            WithinDistancePredicate,
        )
        from repro.index.hash_join import grid_hash_join

        if mbrs.shape[0] == 0:
            return []
        predicate = (
            WithinDistancePredicate(epsilon=epsilon)
            if epsilon > 0
            else IntersectionPredicate()
        )
        local = self._server.dataset
        pairs = grid_hash_join(
            mbrs, oids, local.mbrs, local.oids, predicate
        )
        result_mbrs = np.zeros((len(pairs), 4), dtype=np.float64)
        result_oids = np.arange(len(pairs), dtype=np.int64)

        def account(channel: Channel) -> None:
            channel.send_query(
                BucketRangeQuery(
                    tuple(
                        Point(float((m[0] + m[2]) / 2.0), float((m[1] + m[3]) / 2.0))
                        for m in mbrs
                    ),
                    max(epsilon, 0.0),
                ),
                label="semijoin-upload",
            )
            channel.send_response(
                ObjectPayload(result_mbrs, result_oids), label="semijoin-result"
            )

        self._exchange("semijoin-upload", account)
        return pairs


class ReplicaRouter:
    """Deterministic replica-choice policy for one shard's replica set.

    The router ranks the replicas of one shard before every exchange;
    :class:`ReplicatedRemoteServer` tries them in that order, failing over
    to the next candidate when an exchange exhausts its retries.  Ranking
    consults two kinds of state:

    * **broker marks** (:meth:`mark_down` / :meth:`mark_probe`): breaker
      verdicts applied at admission time -- a cooling replica is routed
      around (tried last-resort only), a half-open replica is *preferred*
      so the probe traffic reaches the recovering server;
    * **session failures** (:meth:`note_failure`): replicas that already
      failed an exchange of this query sink below the healthy ones for the
      rest of the query (cleared by :meth:`reset`, i.e. per run).

    Within a rank the tie-break is policy-specific but always
    deterministic: same marks, same history, same order.  Subclasses
    override :meth:`_key` (the within-rank sort key) and optionally
    :meth:`_advance` (state evolved once per routed exchange).
    """

    policy = "healthy"

    def __init__(self) -> None:
        self._names: Tuple[str, ...] = ()
        self._channels: Tuple[Channel, ...] = ()
        self._down: set = set()
        self._probe: set = set()
        self._failed: set = set()

    def bind(self, names: Sequence[str], channels: Sequence[Channel]) -> None:
        """Attach the replica names/channels this router chooses among."""
        self._names = tuple(names)
        self._channels = tuple(channels)

    # -- broker health marks ------------------------------------------- #

    def mark_down(self, name: str) -> None:
        """Route around ``name`` (its breaker is open and still cooling)."""
        if name in self._names:
            self._down.add(name)
            self._probe.discard(name)

    def mark_probe(self, name: str) -> None:
        """Prefer ``name`` (half-open breaker: send the probe to it)."""
        if name in self._names:
            self._probe.add(name)
            self._down.discard(name)

    # -- session failure memory ---------------------------------------- #

    def note_failure(self, idx: int) -> None:
        self._failed.add(idx)

    def note_success(self, idx: int) -> None:
        self._failed.discard(idx)

    def reset(self) -> None:
        """Forget session failures (broker marks survive; they are per-stack)."""
        self._failed.clear()

    # -- ordering ------------------------------------------------------- #

    def _rank(self, idx: int) -> int:
        name = self._names[idx]
        if name in self._down:
            return 3
        if idx in self._failed:
            return 2
        if name in self._probe:
            return 0
        return 1

    def _key(self, idx: int):
        """Within-rank tie-break; the default is the stable replica index."""
        return idx

    def _ordered(self) -> List[int]:
        return sorted(
            range(len(self._names)), key=lambda i: (self._rank(i), self._key(i), i)
        )

    def _advance(self) -> None:
        """Evolve per-exchange state (default: stateless)."""

    def order(self) -> List[int]:
        """Full candidate order for one exchange (advances policy state)."""
        out = self._ordered()
        self._advance()
        return out

    def peek(self) -> int:
        """The replica the *next* :meth:`order` call will try first.

        Never advances state: the proxy evaluates the backing server on the
        peeked replica, then routes the accounting through :meth:`order`,
        and the two must agree.
        """
        return self._ordered()[0]


class HealthyFirstRouter(ReplicaRouter):
    """Default policy: healthy replicas first, stable index tie-break."""

    policy = "healthy"

    def _ordered(self) -> List[int]:
        # Fast path for the overwhelmingly common state: no marks, no
        # session failures.  Rank and tie-break then both reduce to the
        # stable replica index, so the order is the identity -- skipping
        # the sort keeps zero-fault replication overhead near zero
        # (peek + order run before every exchange).
        if not self._down and not self._probe and not self._failed:
            return list(range(len(self._names)))
        return super()._ordered()


class RoundRobinRouter(ReplicaRouter):
    """Rotate the preferred replica one step per routed exchange."""

    policy = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def _key(self, idx: int):
        n = len(self._names)
        return (idx - self._cursor) % n if n else 0

    def _advance(self) -> None:
        n = len(self._names)
        if n:
            self._cursor = (self._cursor + 1) % n


class LeastRetryBytesRouter(ReplicaRouter):
    """Prefer the replica whose channel has burned the fewest retry bytes."""

    policy = "least_retry_bytes"

    def _key(self, idx: int):
        return (self._channels[idx].retry_bytes, idx)


ROUTER_POLICIES: Dict[str, type] = {
    "healthy": HealthyFirstRouter,
    "round_robin": RoundRobinRouter,
    "least_retry_bytes": LeastRetryBytesRouter,
}


def make_router(policy: Optional[str] = None) -> ReplicaRouter:
    """Instantiate a replica-routing policy by name (``None`` -> default)."""
    if policy is None:
        return HealthyFirstRouter()
    if isinstance(policy, ReplicaRouter):
        return policy
    cls = ROUTER_POLICIES.get(policy)
    if cls is None:
        raise ValueError(
            f"unknown replica router policy {policy!r}; "
            f"known: {sorted(ROUTER_POLICIES)}"
        )
    return cls()


class ReplicatedRemoteServer(RemoteServer):
    """A metered failover proxy in front of one shard's replica set.

    Looks exactly like a :class:`RemoteServer` for the shard (same metered
    methods, same evaluate-once structure) but holds one channel per
    replica.  Every exchange is routed by a :class:`ReplicaRouter`; on
    retry exhaustion against one replica the identical request is replayed
    on the next candidate (the failed attempts stay on the loser's retry
    lane), and only when every replica fails does the exchange surface a
    shard-level :class:`~repro.errors.ServerUnavailable`.

    The merged primary ledger is the failover invariant:
    :meth:`ledger_fingerprint` splices the per-replica primary records back
    into exchange order, yielding a fingerprint bit-identical to the one
    the unreplicated shard channel would produce -- whichever replicas
    served, under any recoverable plan, with any router policy.
    """

    def __init__(
        self,
        name: str,
        replicas: Sequence[SpatialServer],
        channels: Sequence[Channel],
        resilience: Optional[ResilienceController] = None,
        router: Optional[ReplicaRouter] = None,
    ) -> None:
        replicas = tuple(replicas)
        channels = tuple(channels)
        if len(channels) != len(replicas):
            raise ValueError("one channel per replica required")
        if not replicas:
            raise ValueError("a replicated proxy needs at least one replica")
        self.name = name
        self._replicas = replicas
        self._channels_tuple = channels
        # Representative channel: config/tariff reads only (all replica
        # channels share both); never written to directly.
        self.channel = channels[0]
        self.resilience = resilience
        self.router = router if router is not None else HealthyFirstRouter()
        self.router.bind(tuple(rep.name for rep in replicas), channels)
        #: ``(replica_index, primary_record_count)`` per successful
        #: exchange, in exchange order -- the splice map of the merged
        #: primary ledger.
        self._primary_sequence: List[Tuple[int, int]] = []
        #: ``(shard, replica_channel, label, kind)`` per abandoned replica
        #: exchange (read by the broker to charge per-replica breakers).
        self.failover_events: List[Tuple[str, str, str, str]] = []

    # ------------------------------------------------------------------ #

    @property
    def _server(self) -> SpatialServer:
        """The replica the next exchange will be routed to first.

        Evaluation (and its statistics) follows the router's current first
        choice; replicas share one immutable build, so the answer is the
        same whichever replica evaluates.
        """
        return self._replicas[self.router.peek()]

    def _exchange(self, label: str, account: Callable[[Channel], None]) -> None:
        """Route one exchange across the replicas, failing over on loss.

        Candidates are tried in router order.  A candidate that exhausts
        its retries (or is declared unavailable) has already accounted its
        attempts on its own retry lane; the exchange is then replayed
        verbatim on the next candidate.  Unrecoverable faults (link
        disconnect) and deadline timeouts are not failover events -- they
        abort the query as before.
        """
        order = self.router.order()
        for position, idx in enumerate(order):
            channel = self._channels_tuple[idx]
            before = len(channel.log.records)
            try:
                if self.resilience is None:
                    account(channel)
                else:
                    self.resilience.exchange(
                        channel, label, lambda: account(channel)
                    )
            except (ChannelFault, RetryExhausted) as err:
                if isinstance(err, ChannelFault) and not err.recoverable:
                    raise
                kind = (
                    err.kind
                    if isinstance(err, ChannelFault)
                    else err.last_fault.kind
                )
                self.router.note_failure(idx)
                self.failover_events.append((self.name, channel.name, label, kind))
                if self.resilience is not None:
                    self.resilience.note_failover(
                        self.name, channel.name, label, kind
                    )
                continue
            self.router.note_success(idx)
            self._primary_sequence.append(
                (idx, len(channel.log.records) - before)
            )
            return
        raise ServerUnavailable(
            f"all {len(order)} replicas of shard {self.name!r} unavailable "
            f"during {label!r}",
            server=self.name,
            op_index=None,
            kind="unavailable",
            recoverable=True,
        )

    def apply_health(self, health: Dict[str, str]) -> None:
        """Apply broker breaker verdicts (``"down"`` / ``"probe"`` by name)."""
        for name, state in health.items():
            if state == "down":
                self.router.mark_down(name)
            elif state == "probe":
                self.router.mark_probe(name)

    # ------------------------------------------------------------------ #
    # connection introspection (one channel per replica)
    # ------------------------------------------------------------------ #

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All replica channels, replica order."""
        return self._channels_tuple

    def reset_channels(self) -> None:
        for channel in self._channels_tuple:
            channel.reset()
        self._primary_sequence.clear()
        self.failover_events.clear()
        self.router.reset()

    def channel_snapshot(self) -> Dict[str, object]:
        """Shard ledger snapshot: summed totals plus per-replica detail."""
        replica_snaps = [chan.snapshot() for chan in self._channels_tuple]
        summed = (
            "uplink_bytes",
            "downlink_bytes",
            "total_bytes",
            "uplink_packets",
            "downlink_packets",
            "messages_up",
            "messages_down",
            "total_cost",
        )
        merged: Dict[str, object] = {"name": self.name}
        for key in summed:
            merged[key] = sum(snap[key] for snap in replica_snaps)
        merged["tariff"] = self.tariff
        merged["replicas"] = replica_snaps
        return merged

    def ledger_fingerprint(self) -> Tuple:
        """The shard's merged primary-lane fingerprint (replica-agnostic).

        Splices the per-replica primary records back into exchange order
        using the ``(replica, record_count)`` sequence captured at exchange
        time, and sums the per-replica primary counters.  Shaped exactly
        like :meth:`Channel.ledger_fingerprint` of a single shard channel
        (record tuples carry no channel name), so a replicated shard under
        a recoverable plan fingerprints bit-identically to the unreplicated
        fault-free shard.
        """
        cursors = [0] * len(self._channels_tuple)
        merged_records: List[Tuple] = []
        for idx, count in self._primary_sequence:
            records = self._channels_tuple[idx].log.records
            start = cursors[idx]
            merged_records.extend(
                (
                    rec.direction,
                    rec.kind.value,
                    rec.payload_bytes,
                    rec.wire_bytes,
                    rec.packets,
                    rec.label,
                )
                for rec in records[start : start + count]
            )
            cursors[idx] = start + count
        sums = [0] * 6
        for chan in self._channels_tuple:
            for j, key in enumerate(
                (
                    "uplink_bytes",
                    "downlink_bytes",
                    "uplink_packets",
                    "downlink_packets",
                    "messages_up",
                    "messages_down",
                )
            ):
                sums[j] += getattr(chan, key)
        return (self.name, *sums, tuple(merged_records))

    def server_stats(self) -> Dict[str, int]:
        """Replica-summed statistics (evaluation may move on failover)."""
        totals: Dict[str, int] = {}
        for rep in self._replicas:
            for key, value in rep.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def stat_objects(self) -> Tuple[ServerQueryStats, ...]:
        return tuple(rep.stats for rep in self._replicas)

    def total_bytes(self) -> int:
        return sum(chan.total_bytes for chan in self._channels_tuple)

    def total_cost(self) -> float:
        return sum(chan.total_cost for chan in self._channels_tuple)


class ShardedRemoteServer(SpatialServerInterface):
    """A metered scatter/merge proxy in front of a shard fleet.

    The device-side algorithms see one :class:`SpatialServerInterface`
    endpoint; underneath, every shard has its own ordinary
    :class:`RemoteServer` on its own :class:`Channel` (named after the
    shard, e.g. ``"R#2"``), so per-shard byte ledgers, retry lanes and
    deterministic fault substreams come for free.

    Routing is by bounds intersection: a request window is scattered only
    to the non-empty shards whose dataset bounds it intersects; a range
    probe is routed through its Chebyshev square ``centre +- radius``
    (min-distance <= radius implies the object MBR intersects that square,
    and every shard object's MBR lies inside the shard bounds, so routing
    never loses an answer).  Answers are merged deterministically in
    ascending shard order; summed COUNTs and merged payload row sets are
    bit-identical to the union server's answers.  Requests routed to zero
    shards produce empty answers without touching any wire.
    """

    def __init__(
        self,
        fleet: ShardedSpatialServer,
        channels: Sequence[Channel],
        resilience: Optional[ResilienceController] = None,
        router: Optional[str] = None,
    ) -> None:
        channels = tuple(channels)
        expected = sum(len(group) for group in fleet.replica_groups)
        if len(channels) != expected:
            raise ValueError(
                "one channel per replica required "
                f"(fleet has {expected}, got {len(channels)})"
            )
        self._fleet = fleet
        self.name = fleet.name
        self.resilience = resilience
        self.router_policy = router
        # One proxy per shard: a plain RemoteServer for an unreplicated
        # shard (bit-identical to the PR 8 plane), a failover
        # ReplicatedRemoteServer -- with its own router instance -- when
        # the shard has siblings.  Channels arrive replica-major in fleet
        # order: R#0/0, R#0/1, ..., R#1/0, ...
        proxies: List[RemoteServer] = []
        pos = 0
        for group, shard_name in zip(fleet.replica_groups, fleet.shard_names):
            group_chans = channels[pos : pos + len(group)]
            pos += len(group)
            if len(group) == 1:
                proxies.append(
                    RemoteServer(group[0], group_chans[0], resilience=resilience)
                )
            else:
                proxies.append(
                    ReplicatedRemoteServer(
                        shard_name,
                        group,
                        group_chans,
                        resilience=resilience,
                        router=make_router(router),
                    )
                )
        self._proxies = tuple(proxies)
        # Routing table: shard dataset bounds, None for empty shards (an
        # empty shard never answers and is never routed to).
        self._bounds = tuple(
            shard.dataset.bounds() if len(shard) else None for shard in fleet.shards
        )

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def _routed(self, window: Rect) -> List[int]:
        """Shard indices whose (non-empty) bounds intersect the window."""
        return [
            i
            for i, b in enumerate(self._bounds)
            if b is not None and b.intersects(window)
        ]

    @staticmethod
    def _probe_window(center: Point, radius: float) -> Rect:
        """The Chebyshev square that makes range-probe routing safe."""
        return Rect(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )

    def _scatter(self, windows: Sequence[Rect]) -> List[Tuple[int, List[int]]]:
        """Group request indices by routed shard, shards ascending."""
        per_shard: Dict[int, List[int]] = {}
        for wi, window in enumerate(windows):
            for si in self._routed(window):
                per_shard.setdefault(si, []).append(wi)
        return sorted(per_shard.items())

    @staticmethod
    def _merge_payloads(
        parts: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not parts:
            return np.empty((0, 4)), np.empty(0, dtype=np.int64)
        return (
            np.vstack([m for m, _ in parts]),
            np.concatenate([o for _, o in parts]),
        )

    def _merge_flat(
        self,
        requests: Sequence[Rect],
        shard_results: List[Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge per-shard CSR answers back into request-order CSR form.

        Within one request the shard payloads are concatenated in ascending
        shard order (``shard_results`` arrives that way from
        :meth:`_scatter`), so the merged rows are a deterministic function
        of the request batch alone.
        """
        per_request: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in requests
        ]
        for idxs, mbrs, oids, bounds in shard_results:
            for j, wi in enumerate(idxs):
                lo, hi = int(bounds[j]), int(bounds[j + 1])
                if hi > lo:
                    per_request[wi].append((mbrs[lo:hi], oids[lo:hi]))
        out_bounds = np.zeros(len(per_request) + 1, dtype=np.int64)
        mbr_parts: List[np.ndarray] = []
        oid_parts: List[np.ndarray] = []
        total = 0
        for wi, chunks in enumerate(per_request):
            for m, o in chunks:
                total += int(o.shape[0])
                mbr_parts.append(m)
                oid_parts.append(o)
            out_bounds[wi + 1] = total
        mbrs = np.vstack(mbr_parts) if mbr_parts else np.empty((0, 4))
        oids = (
            np.concatenate(oid_parts) if oid_parts else np.empty(0, dtype=np.int64)
        )
        return mbrs, oids, out_bounds

    # ------------------------------------------------------------------ #
    # metered primitive queries (scatter to shards, merge answers)
    # ------------------------------------------------------------------ #

    def window(self, window: Rect) -> Tuple[np.ndarray, np.ndarray]:
        return self._merge_payloads(
            [self._proxies[i].window(window) for i in self._routed(window)]
        )

    def window_batch(
        self, windows: Sequence[Rect]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        windows = list(windows)
        mbrs, oids, bounds = self.window_batch_flat(windows)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(windows))
        ]

    def window_batch_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        windows = list(windows)
        shard_results = []
        for si, idxs in self._scatter(windows):
            m, o, b = self._proxies[si].window_batch_flat(
                [windows[wi] for wi in idxs]
            )
            shard_results.append((idxs, m, o, b))
        return self._merge_flat(windows, shard_results)

    def count(self, window: Rect) -> int:
        return sum(self._proxies[i].count(window) for i in self._routed(window))

    def count_batch(self, windows: Sequence[Rect]) -> List[int]:
        windows = list(windows)
        values = [0] * len(windows)
        for si, idxs in self._scatter(windows):
            sub = self._proxies[si].count_batch([windows[wi] for wi in idxs])
            for wi, v in zip(idxs, sub):
                values[wi] += int(v)
        return values

    def count_batch_prefetched(
        self, windows: Sequence[Rect], values: Sequence[int]
    ) -> List[int]:
        """Attribute a broker-coalesced COUNT batch across the shards.

        The wave driver evaluated the merged counts once on the fleet
        build (:meth:`ShardedSpatialServer.evaluate_count_batch`); here
        each routed shard's ledger and statistics are charged exactly what
        :meth:`count_batch` over the same windows would have charged (the
        per-shard values are irrelevant to the uniform accounting).
        """
        windows = list(windows)
        values = [int(v) for v in values]
        if len(values) != len(windows):
            raise ValueError("values must be parallel to windows")
        for si, idxs in self._scatter(windows):
            self._proxies[si].count_batch_prefetched(
                [windows[wi] for wi in idxs], [0] * len(idxs)
            )
        return values

    def range(self, center: Point, epsilon: float) -> Tuple[np.ndarray, np.ndarray]:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        probe = self._probe_window(center, epsilon)
        return self._merge_payloads(
            [self._proxies[i].range(center, epsilon) for i in self._routed(probe)]
        )

    def range_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        mbrs, oids, bounds = self.range_batch_flat(centers, radii)
        return [
            (mbrs[bounds[i] : bounds[i + 1]], oids[bounds[i] : bounds[i + 1]])
            for i in range(len(centers))
        ]

    def range_batch_flat(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        centers = list(centers)
        per_probe = [float(r) for r in radii]
        if any(r < 0 for r in per_probe):
            raise ValueError("epsilon must be non-negative")
        probes = [self._probe_window(c, r) for c, r in zip(centers, per_probe)]
        shard_results = []
        for si, idxs in self._scatter(probes):
            m, o, b = self._proxies[si].range_batch_flat(
                [centers[pi] for pi in idxs], [per_probe[pi] for pi in idxs]
            )
            shard_results.append((idxs, m, o, b))
        return self._merge_flat(probes, shard_results)

    def bucket_range(
        self,
        centers: Sequence[Point],
        epsilon: float,
        radii: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        centers = tuple(centers)
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not centers:
            raise ValueError("bucket_range needs at least one probe point")
        if radii is not None and len(radii) != len(centers):
            raise ValueError("radii must be parallel to centers")
        per_probe = (
            [epsilon] * len(centers) if radii is None else [float(r) for r in radii]
        )
        probe_windows = [
            self._probe_window(c, r) for c, r in zip(centers, per_probe)
        ]
        mbr_parts: List[np.ndarray] = []
        oid_parts: List[np.ndarray] = []
        probe_parts: List[np.ndarray] = []
        for si, idxs in self._scatter(probe_windows):
            m, o, p = self._proxies[si].bucket_range(
                tuple(centers[pi] for pi in idxs),
                epsilon,
                [per_probe[pi] for pi in idxs],
            )
            mbr_parts.append(m)
            oid_parts.append(o)
            probe_parts.append(np.asarray(idxs, dtype=np.int64)[np.asarray(p, dtype=np.int64)])
        if not mbr_parts:
            return np.empty((0, 4)), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        mbrs = np.vstack(mbr_parts)
        oids = np.concatenate(oid_parts)
        probe_idx = np.concatenate(probe_parts)
        # Probe-major order with ascending shards inside each probe: the
        # deterministic merge the equivalence tests pin down.
        order = np.argsort(probe_idx, kind="stable")
        return mbrs[order], oids[order], probe_idx[order]

    def average_mbr_area(self, window: Rect) -> float:
        # Weighted mean of the per-shard aggregates; the weight (the
        # shard's object count in the window) rides in the same aggregate
        # response, so only the aggregate exchange is metered per shard.
        total = 0.0
        weight = 0
        for si in self._routed(window):
            proxy = self._proxies[si]
            n = proxy.backing_server.index.count(window)
            value = proxy.average_mbr_area(window)
            total += value * n
            weight += n
        return total / weight if weight else 0.0

    # ------------------------------------------------------------------ #
    # connection introspection
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> NetworkConfig:
        return self._proxies[0].config

    @property
    def tariff(self) -> float:
        return self._proxies[0].tariff

    @property
    def backing_server(self) -> ShardedSpatialServer:
        """The shard fleet behind the proxy (tests and oracles only)."""
        return self._fleet

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All accounting channels, shard-major then replica order."""
        return tuple(chan for proxy in self._proxies for chan in proxy.channels)

    def reset_channels(self) -> None:
        for proxy in self._proxies:
            proxy.reset_channels()

    def apply_replica_health(self, health: Dict[str, str]) -> None:
        """Push broker breaker verdicts down to the per-shard routers."""
        for proxy in self._proxies:
            if isinstance(proxy, ReplicatedRemoteServer):
                proxy.apply_health(health)

    def failover_events(self) -> Tuple[Tuple[str, str, str, str], ...]:
        """All ``(shard, replica, label, kind)`` failovers, shard order."""
        return tuple(
            event
            for proxy in self._proxies
            for event in getattr(proxy, "failover_events", ())
        )

    def channel_snapshot(self) -> Dict[str, object]:
        """Fleet ledger snapshot: summed totals plus per-shard detail."""
        shard_snaps = [proxy.channel_snapshot() for proxy in self._proxies]
        summed = (
            "uplink_bytes",
            "downlink_bytes",
            "total_bytes",
            "uplink_packets",
            "downlink_packets",
            "messages_up",
            "messages_down",
            "total_cost",
        )
        merged: Dict[str, object] = {"name": self.name}
        for key in summed:
            merged[key] = sum(snap[key] for snap in shard_snaps)
        merged["tariff"] = self.tariff
        merged["shards"] = shard_snaps
        return merged

    def ledger_fingerprint(self) -> Tuple:
        """Per-shard primary-lane fingerprints, shard order.

        A replicated shard contributes its replica-agnostic merged
        fingerprint (see :meth:`ReplicatedRemoteServer.ledger_fingerprint`),
        so the fleet fingerprint of a replicated run equals the
        unreplicated one whenever the primary ledgers match.
        """
        return tuple(proxy.ledger_fingerprint() for proxy in self._proxies)

    def server_stats(self) -> Dict[str, int]:
        """Fleet-summed backing-server statistics."""
        return self._fleet.stats.as_dict()

    def stat_objects(self) -> Tuple[ServerQueryStats, ...]:
        return tuple(
            stats for proxy in self._proxies for stats in proxy.stat_objects()
        )

    def total_bytes(self) -> int:
        """Total wire bytes over all shard connections so far."""
        return sum(proxy.total_bytes() for proxy in self._proxies)

    def total_cost(self) -> float:
        """Tariff-weighted cost over all shard connections so far."""
        return sum(proxy.total_cost() for proxy in self._proxies)


@dataclass
class ServerPair:
    """The two metered connections a join session holds.

    ``r`` and ``s`` follow the paper's naming: the join is ``R join S``.
    """

    r: RemoteServer
    s: RemoteServer

    def total_bytes(self) -> int:
        """Total wire bytes over both connections (the figures' metric)."""
        return self.r.total_bytes() + self.s.total_bytes()

    def total_cost(self) -> float:
        """Tariff-weighted total cost (what the algorithms minimise)."""
        return self.r.total_cost() + self.s.total_cost()

    def reset(self) -> None:
        self.r.reset_channels()
        self.s.reset_channels()

    def swapped(self) -> "ServerPair":
        """The pair with roles exchanged (used by symmetric code paths)."""
        return ServerPair(r=self.s, s=self.r)

    @staticmethod
    def connect(
        server_r: SpatialServer,
        server_s: SpatialServer,
        config: Optional[NetworkConfig] = None,
        indexed: bool = False,
        resilience: Optional[ResilienceController] = None,
        router: Optional[str] = None,
        replica_health: Optional[Dict[str, str]] = None,
        observer=None,
    ) -> "ServerPair":
        """Create metered connections to two servers with a shared config.

        Either side may be a :class:`~repro.server.sharded.ShardedSpatialServer`
        fleet, in which case its connection is a scatter/merge
        :class:`ShardedRemoteServer` with one channel (and one fault
        substream) per *replica*.  ``resilience`` (if given) is shared by
        both sides: one retry policy, one deadline budget and one
        fault-plan instantiation per query, with a separate deterministic
        fault stream per channel name.  ``router`` names the
        :data:`ROUTER_POLICIES` entry replicated shards route through
        (``None`` -> healthy-first); ``replica_health`` maps replica names
        to ``"down"`` / ``"probe"`` breaker verdicts applied to the routers
        at connect time.  ``observer`` is a read-only traffic observer
        threaded into every channel (see :class:`Channel`).
        """
        config = config or NetworkConfig()
        sharded = isinstance(server_r, ShardedSpatialServer) or isinstance(
            server_s, ShardedSpatialServer
        )
        if indexed and sharded:
            raise ValueError(
                "semijoin needs index-published servers; sharded fleets do not "
                "publish a single R-tree"
            )
        proxy_cls = IndexedRemoteServer if indexed else RemoteServer

        def _connect_one(server, tariff: float):
            if isinstance(server, ShardedSpatialServer):
                chans = [
                    Channel(config, tariff=tariff, name=replica.name, observer=observer)
                    for group in server.replica_groups
                    for replica in group
                ]
                if resilience is not None:
                    for chan in chans:
                        resilience.register(chan)
                proxy = ShardedRemoteServer(
                    server, chans, resilience=resilience, router=router
                )
                if replica_health:
                    proxy.apply_replica_health(replica_health)
                return proxy
            chan = Channel(config, tariff=tariff, name=server.name, observer=observer)
            if resilience is not None:
                resilience.register(chan)
            return proxy_cls(server, chan, resilience=resilience)

        return ServerPair(
            r=_connect_one(server_r, config.tariff_r),
            s=_connect_one(server_s, config.tariff_s),
        )
