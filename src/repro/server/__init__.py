"""Non-cooperative spatial servers.

A server publishes one spatial dataset and answers only the primitive
queries of Section 3 of the paper (WINDOW, COUNT, epsilon-RANGE, plus the
bucket range variant and a scalar aggregate for average object-MBR area).
Servers never talk to each other and never reveal their internal indexes.

Two layers:

* :class:`~repro.server.server.SpatialServer` -- the server proper,
  answering queries from its aggregate R-tree;
* :class:`~repro.server.remote.RemoteServer` -- the client-side proxy that
  the mobile device holds.  Every call is metered through a
  :class:`~repro.network.channel.Channel`, so the measured byte totals are
  produced here, not inside the algorithms.
* :class:`~repro.server.remote.IndexedRemoteServer` -- the privileged proxy
  used only by the SemiJoin comparator, exposing R-tree level MBRs (the
  paper assumes the servers publish them for that algorithm only).
* :class:`~repro.server.sharded.ShardedSpatialServer` /
  :class:`~repro.server.remote.ShardedRemoteServer` -- the sharded data
  plane: one logical dataset partitioned across a fleet of shard servers,
  scattered to and merged from over per-shard metered channels.
"""

from __future__ import annotations

from repro.server.interface import SpatialServerInterface
from repro.server.server import SpatialServer
from repro.server.sharded import FleetStats, ShardedSpatialServer
from repro.server.remote import (
    IndexedRemoteServer,
    RemoteServer,
    ServerPair,
    ShardedRemoteServer,
)

__all__ = [
    "SpatialServerInterface",
    "SpatialServer",
    "ShardedSpatialServer",
    "FleetStats",
    "RemoteServer",
    "IndexedRemoteServer",
    "ShardedRemoteServer",
    "ServerPair",
]
