"""A fleet of shard servers publishing one logical dataset.

The sharded data plane splits a published dataset across N
:class:`~repro.server.server.SpatialServer` instances (one per shard of a
deterministic :func:`~repro.datasets.partition.partition_dataset` split) and
presents them as one logical server build.  The fleet itself never answers
queries -- the client side talks to every shard through its own metered
connection (:class:`~repro.server.remote.ShardedRemoteServer`) -- but it is
the unit the query broker caches, primes, places and reuses:

* ``shared_view()`` hands every in-flight query a statistics-isolated view
  of the whole fleet (each shard's index and dataset shared by reference);
* ``evaluate_count_batch()`` answers a coalesced COUNT batch for the wave
  driver by summing the per-shard counts (shards partition the object set
  exactly, so the sums equal the union server's counts bit for bit);
* ``breaker_units()`` exposes the shards as independently-breakable
  servers, so one misbehaving shard trips only its own circuit breaker.

Shard servers are named ``"<name>#<i>"``; those names key the per-shard
channels, ledgers and deterministic fault substreams.

With a replication factor R > 1 each shard is published on R *replica*
servers named ``"<name>#<i>/<j>"`` (``j`` in ``0..R-1``).  Replicas share
one immutable shard dataset build (:meth:`SpatialServer.replica_view`) but
each has its own ``breaker_token``, its own metered channel and its own
deterministic fault substream, so they fail and recover independently --
the client fails a scattered exchange over to a sibling replica instead of
failing the query.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datasets.dataset import SpatialDataset
from repro.datasets.partition import partition_dataset
from repro.geometry.rect import Rect
from repro.server.server import ServerQueryStats, SpatialServer

__all__ = ["ShardedSpatialServer", "FleetStats"]


class FleetStats:
    """Read-through statistics over a fleet of shard servers.

    Quacks like :class:`~repro.server.server.ServerQueryStats` where the
    rest of the stack needs it to -- ``as_dict()`` sums the per-shard
    counters, ``reset()`` clears every shard -- while keeping the real
    counters on the shards, where the metered proxies bump them.
    """

    def __init__(self, shards: Sequence[SpatialServer]) -> None:
        self._shards = tuple(shards)

    def as_dict(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def reset(self) -> None:
        for shard in self._shards:
            shard.stats.reset()

    def per_shard(self) -> Dict[str, Dict[str, int]]:
        """Per-shard counter dicts, keyed by shard server name."""
        return {shard.name: shard.stats.as_dict() for shard in self._shards}

    def __getattr__(self, key: str) -> int:
        # Counter reads (``stats.count_queries`` etc.) sum over the fleet.
        if key.startswith("_"):
            raise AttributeError(key)
        probe = ServerQueryStats()
        if not hasattr(probe, key):
            raise AttributeError(key)
        return sum(getattr(shard.stats, key) for shard in self._shards)


class ShardedSpatialServer:
    """One logical dataset published by a fleet of shard servers.

    Parameters
    ----------
    dataset:
        The logical dataset to publish.
    name:
        Logical server name (``"R"`` / ``"S"``); shard servers are named
        ``"<name>#<i>"``.
    shards:
        Number of shards (>= 1; empty shards are legal and never answer).
    scheme:
        Partitioning scheme, see :data:`~repro.datasets.partition.PARTITION_SCHEMES`.
    index_fanout:
        Fanout of each shard's aggregate R-tree.
    replicas:
        Replication factor R (>= 1).  With R == 1 the fleet is exactly the
        PR 8 sharded plane (shard servers named ``"<name>#<i>"``); with
        R > 1 each shard ``i`` is published on R replicas named
        ``"<name>#<i>/<j>"`` sharing one index build.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        name: str = "server",
        shards: int = 2,
        scheme: str = "grid",
        index_fanout: int = 16,
        replicas: int = 1,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.dataset = dataset.rename(name)
        self.name = name
        self.scheme = scheme
        self.replicas = replicas
        parts = partition_dataset(self.dataset, shards, scheme)
        groups: List[Tuple[SpatialServer, ...]] = []
        for part in parts:
            # The primary replica keeps the bare shard name at R == 1 so an
            # unreplicated fleet stays bit-identical to the PR 8 plane
            # (channel names key ledgers and fault substreams).
            primary_name = part.name if replicas == 1 else f"{part.name}/0"
            primary = SpatialServer(
                part, name=primary_name, index_fanout=index_fanout
            )
            group = [primary]
            for j in range(1, replicas):
                group.append(primary.replica_view(f"{part.name}/{j}"))
            groups.append(tuple(group))
        self.replica_groups: Tuple[Tuple[SpatialServer, ...], ...] = tuple(
            groups
        )
        self.shard_names: Tuple[str, ...] = tuple(part.name for part in parts)
        # ``shards`` stays the per-shard primaries: bounds routing, count
        # evaluation and snapshot priming all run against the shared builds,
        # which the primaries own.
        self.shards: Tuple[SpatialServer, ...] = tuple(
            group[0] for group in self.replica_groups
        )
        self.stats = FleetStats(
            tuple(rep for group in self.replica_groups for rep in group)
        )

    def __len__(self) -> int:
        return len(self.dataset)

    def shared_view(self) -> "ShardedSpatialServer":
        """A fleet of statistics-isolated views over the same shard builds.

        Mirrors :meth:`SpatialServer.shared_view`: the broker builds a
        fleet once per dataset and hands each in-flight query its own view,
        so concurrent queries meter per-shard statistics in isolation
        without re-partitioning or re-indexing.
        """
        view = ShardedSpatialServer.__new__(ShardedSpatialServer)
        view.dataset = self.dataset
        view.name = self.name
        view.scheme = self.scheme
        view.replicas = self.replicas
        view.replica_groups = tuple(
            tuple(rep.shared_view() for rep in group)
            for group in self.replica_groups
        )
        view.shard_names = self.shard_names
        view.shards = tuple(group[0] for group in view.replica_groups)
        view.stats = FleetStats(
            tuple(rep for group in view.replica_groups for rep in group)
        )
        return view

    def breaker_units(self) -> Tuple[SpatialServer, ...]:
        """The independently-breakable servers: every replica of every shard."""
        return tuple(rep for group in self.replica_groups for rep in group)

    def breaker_groups(self) -> Tuple[Tuple[SpatialServer, ...], ...]:
        """Breaker units grouped by failover domain (one group per shard).

        The broker routes around a cooling replica as long as a sibling in
        its group is available, and sheds the query only when the whole
        group is open.
        """
        return self.replica_groups

    def evaluate_count_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Answer COUNTs for the wave driver, statistics untouched.

        The shards partition the object set exactly, so summing the
        per-shard counts reproduces the union server's counts bit for bit
        (non-intersecting shards contribute zero).
        """
        totals = [0] * len(list(windows))
        for shard in self.shards:
            if len(shard) == 0:
                continue
            for i, value in enumerate(shard.evaluate_count_batch(windows)):
                totals[i] += int(value)
        return totals

    def prime_snapshot(self) -> None:
        """Force every shard's lazy index snapshot (read-only views after)."""
        for shard in self.shards:
            shard.prime_snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardedSpatialServer(name={self.name!r}, shards={len(self.shards)}, "
            f"scheme={self.scheme!r}, replicas={self.replicas}, n={len(self)})"
        )
