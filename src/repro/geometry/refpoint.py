"""Reference-point duplicate avoidance.

Partition-based spatial joins replicate objects into every cell their MBR
(or epsilon-expanded window) intersects, so the same qualifying pair can be
produced by several cells.  The paper cites the standard remedy
(Dittrich & Seeger, ICDE 2000): report a pair only from the cell that
contains a canonical *reference point* of the pair -- here the bottom-left
corner of the intersection of the two (expanded) MBRs.

The mobile-join algorithms use this rule when they process a window that
was expanded by ``epsilon/2`` for a distance join, and the in-memory
PBSM-style hash join uses it across its internal grid cells.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def reference_point(a: Rect, b: Rect) -> Optional[Point]:
    """Bottom-left corner of ``a ∩ b``, or ``None`` when the MBRs are disjoint."""
    inter = a.intersection(b)
    if inter is None:
        return None
    return Point(inter.xmin, inter.ymin)


def pair_reference_point(a: Rect, b: Rect, epsilon: float = 0.0) -> Point:
    """Canonical reference point for a (possibly distance-) joining pair.

    For intersecting MBRs this is the bottom-left corner of the overlap.
    For a distance join the MBRs may be disjoint yet within ``epsilon``; in
    that case the reference point is the midpoint of the segment realising
    the minimum separation, which is unique and symmetric in ``a``/``b``.
    """
    rp = reference_point(a, b)
    if rp is not None:
        return rp
    if epsilon <= 0:
        raise ValueError("disjoint MBRs only have a reference point for epsilon > 0")
    # Closest coordinates on each axis.
    ax = _closest_interval_point(a.xmin, a.xmax, b.xmin, b.xmax)
    ay = _closest_interval_point(a.ymin, a.ymax, b.ymin, b.ymax)
    bx = _closest_interval_point(b.xmin, b.xmax, a.xmin, a.xmax)
    by = _closest_interval_point(b.ymin, b.ymax, a.ymin, a.ymax)
    return Point((ax + bx) / 2.0, (ay + by) / 2.0)


def belongs_to_cell(a: Rect, b: Rect, cell: Rect, epsilon: float = 0.0) -> bool:
    """True when ``cell`` is the canonical reporting cell for the pair ``(a, b)``.

    The pair is reported by the cell that contains its reference point.
    A pair whose reference point lies outside every processed cell (possible
    only when the processed cells do not tile the data space) is reported by
    no cell; callers that partition the full data space never lose pairs.
    """
    return cell.contains_point(pair_reference_point(a, b, epsilon))


def dedup_key(a_oid: int, b_oid: int) -> Tuple[int, int]:
    """Canonical (hashable) identity of a joining pair, used by result sets."""
    return (a_oid, b_oid)


def _closest_interval_point(lo: float, hi: float, other_lo: float, other_hi: float) -> float:
    """The point of ``[lo, hi]`` closest to the interval ``[other_lo, other_hi]``."""
    if hi < other_lo:
        return hi
    if other_hi < lo:
        return lo
    # Overlapping intervals: any common point works; use the left end of the overlap.
    return max(lo, other_lo)
