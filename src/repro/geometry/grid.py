"""Regular grid decompositions.

Every partition-based strategy in the paper (the naive grid join, MobiJoin,
UpJoin, SrJoin and the PBSM-style in-memory hash join) decomposes a window
into a regular ``k x k`` grid.  :class:`RegularGrid` captures that
decomposition together with cell lookup by position, which the in-memory
hash join and the duplicate-avoidance rule both need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def quadrants(window: Rect) -> List[Rect]:
    """The 2 x 2 decomposition used by MobiJoin/UpJoin/SrJoin (SW, SE, NW, NE)."""
    return window.quadrants()


@dataclass(frozen=True)
class RegularGrid:
    """A regular ``nx x ny`` grid over a window.

    Cells are indexed row-major from the bottom-left corner, i.e. cell
    ``(ix, iy)`` has linear index ``iy * nx + ix``.
    """

    window: Rect
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        if self.window.width <= 0 or self.window.height <= 0:
            raise ValueError("grid window must have positive extent")

    # ------------------------------------------------------------------ #

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        return self.window.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.window.height / self.ny

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """The rectangle of cell ``(ix, iy)``."""
        self._check_cell(ix, iy)
        x0 = self.window.xmin + ix * self.cell_width
        y0 = self.window.ymin + iy * self.cell_height
        x1 = self.window.xmax if ix == self.nx - 1 else x0 + self.cell_width
        y1 = self.window.ymax if iy == self.ny - 1 else y0 + self.cell_height
        return Rect(x0, y0, x1, y1)

    def cell_rect_linear(self, index: int) -> Rect:
        """The rectangle of the cell with linear index ``index``."""
        ix, iy = self.cell_coords(index)
        return self.cell_rect(ix, iy)

    def cell_coords(self, index: int) -> Tuple[int, int]:
        """Convert a linear cell index into ``(ix, iy)`` coordinates."""
        if not 0 <= index < self.num_cells:
            raise IndexError(f"cell index {index} out of range")
        return index % self.nx, index // self.nx

    def cell_index(self, ix: int, iy: int) -> int:
        """Convert ``(ix, iy)`` coordinates into a linear cell index."""
        self._check_cell(ix, iy)
        return iy * self.nx + ix

    def cell_of_point(self, p: Point) -> Tuple[int, int]:
        """The cell containing a point (points on the max edges map to the last cell).

        Raises :class:`ValueError` when the point lies outside the grid window.
        """
        if not self.window.contains_point(p):
            raise ValueError(f"point {p} lies outside the grid window {self.window}")
        ix = int((p.x - self.window.xmin) / self.cell_width)
        iy = int((p.y - self.window.ymin) / self.cell_height)
        return min(ix, self.nx - 1), min(iy, self.ny - 1)

    def cells_overlapping(self, rect: Rect) -> List[Tuple[int, int]]:
        """All cells whose rectangle intersects ``rect`` (possibly empty)."""
        inter = rect.intersection(self.window)
        if inter is None:
            return []
        ix0 = int((inter.xmin - self.window.xmin) / self.cell_width)
        iy0 = int((inter.ymin - self.window.ymin) / self.cell_height)
        ix1 = int((inter.xmax - self.window.xmin) / self.cell_width)
        iy1 = int((inter.ymax - self.window.ymin) / self.cell_height)
        ix0, iy0 = min(ix0, self.nx - 1), min(iy0, self.ny - 1)
        ix1, iy1 = min(ix1, self.nx - 1), min(iy1, self.ny - 1)
        return [
            (ix, iy) for iy in range(iy0, iy1 + 1) for ix in range(ix0, ix1 + 1)
        ]

    def iter_cells(self) -> Iterator[Tuple[int, int, Rect]]:
        """Iterate ``(ix, iy, cell_rect)`` row-major from the bottom-left."""
        for iy in range(self.ny):
            for ix in range(self.nx):
                yield ix, iy, self.cell_rect(ix, iy)

    def all_cell_rects(self) -> List[Rect]:
        """All cell rectangles in linear-index order."""
        return [rect for _, _, rect in self.iter_cells()]

    # ------------------------------------------------------------------ #

    def _check_cell(self, ix: int, iy: int) -> None:
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError(f"cell ({ix}, {iy}) out of range for {self.nx}x{self.ny} grid")
