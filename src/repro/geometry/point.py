"""Immutable 2D points.

Points are the primary object type of the paper's synthetic workloads
("1000 points ... clustered around k randomly selected centers").  A point
carries an opaque object identifier (``oid``) so that join results can be
reported as id pairs, plus an optional payload size override used when an
object should be accounted with a non-default wire size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the unit (or any) 2D coordinate space.

    Parameters
    ----------
    x, y:
        Coordinates.
    oid:
        Object identifier.  Defaults to ``-1`` (anonymous point); dataset
        containers always assign explicit, unique ids.
    """

    x: float
    y: float
    oid: int = field(default=-1, compare=False)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt on hot paths)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def within_distance(self, other: "Point", epsilon: float) -> bool:
        """Return True when ``other`` lies within ``epsilon`` of this point."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return self.squared_distance_to(other) <= epsilon * epsilon

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy, self.oid)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Point({self.x:.6g}, {self.y:.6g}, oid={self.oid})"
