"""Line segments.

Segments are used by the railway-like dataset generator
(:mod:`repro.datasets.railway`): the paper's real dataset consists of the
MBRs of German railway segments.  Only the operations needed by the
generator and by MBR extraction are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Segment:
    """A straight line segment between two endpoints."""

    p1: Point
    p2: Point
    oid: int = field(default=-1, compare=False)

    @property
    def length(self) -> float:
        return self.p1.distance_to(self.p2)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the segment."""
        return Rect(
            min(self.p1.x, self.p2.x),
            min(self.p1.y, self.p2.y),
            max(self.p1.x, self.p2.x),
            max(self.p1.y, self.p2.y),
        )

    def midpoint(self) -> Point:
        return Point((self.p1.x + self.p2.x) / 2.0, (self.p1.y + self.p2.y) / 2.0)

    def interpolate(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        if not 0.0 <= t <= 1.0:
            raise ValueError("t must lie in [0, 1]")
        return Point(
            self.p1.x + t * (self.p2.x - self.p1.x),
            self.p1.y + t * (self.p2.y - self.p1.y),
        )

    def split(self, pieces: int) -> List["Segment"]:
        """Split the segment into ``pieces`` equal sub-segments."""
        if pieces < 1:
            raise ValueError("pieces must be >= 1")
        points = [self.interpolate(i / pieces) for i in range(pieces + 1)]
        return [Segment(points[i], points[i + 1]) for i in range(pieces)]

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from the segment to a point."""
        vx = self.p2.x - self.p1.x
        vy = self.p2.y - self.p1.y
        wx = p.x - self.p1.x
        wy = p.y - self.p1.y
        seg_len_sq = vx * vx + vy * vy
        if seg_len_sq == 0.0:
            return self.p1.distance_to(p)
        t = max(0.0, min(1.0, (wx * vx + wy * vy) / seg_len_sq))
        proj = Point(self.p1.x + t * vx, self.p1.y + t * vy)
        return proj.distance_to(p)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Segment({self.p1} -> {self.p2})"
