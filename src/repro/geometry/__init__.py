"""Planar geometry primitives used throughout the reproduction.

The spatial objects handled by the paper are points and small rectangles
(minimum bounding rectangles, MBRs).  This subpackage provides:

* :class:`~repro.geometry.point.Point` -- an immutable 2D point.
* :class:`~repro.geometry.rect.Rect` -- an axis-aligned rectangle / MBR.
* :class:`~repro.geometry.segment.Segment` -- a line segment (used by the
  railway-like dataset generator).
* :class:`~repro.geometry.grid.RegularGrid` -- the regular k x k grid
  decomposition used by all partition-based join strategies.
* vectorised array operations over ``(N, 4)`` MBR arrays in
  :mod:`repro.geometry.rect_array`.
* join predicates (:mod:`repro.geometry.predicates`) and the
  reference-point duplicate-avoidance rule
  (:mod:`repro.geometry.refpoint`).
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect, UNIT_RECT
from repro.geometry.segment import Segment
from repro.geometry.grid import RegularGrid, quadrants
from repro.geometry.predicates import (
    JoinPredicate,
    IntersectionPredicate,
    WithinDistancePredicate,
    predicate_for,
)
from repro.geometry.refpoint import reference_point, pair_reference_point
from repro.geometry import rect_array

__all__ = [
    "Point",
    "Rect",
    "UNIT_RECT",
    "Segment",
    "RegularGrid",
    "quadrants",
    "JoinPredicate",
    "IntersectionPredicate",
    "WithinDistancePredicate",
    "predicate_for",
    "reference_point",
    "pair_reference_point",
    "rect_array",
]
