"""Join predicates.

The paper studies three join flavours:

* the **intersection join** -- report pairs ``(r, s)`` whose MBRs intersect;
* the **epsilon-distance join** -- report pairs within distance ``epsilon``;
* the **iceberg distance semi-join** -- report objects ``r`` of ``R`` that
  join (within ``epsilon``) with at least ``m`` objects of ``S``.

The first two are pairwise predicates and are modelled here; the iceberg
variant is a post-aggregation over a distance join and lives in
:mod:`repro.core.join_types`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.geometry import rect_array
from repro.geometry.rect import Rect


class JoinPredicate(ABC):
    """A symmetric pairwise predicate between two MBRs."""

    #: How much the *inner* (S-side) window must be expanded per side so
    #: that a window-based partitioning does not miss qualifying pairs that
    #: straddle a cell boundary.  The reproduction anchors every pair at the
    #: R object: R is queried with the unexpanded cell and S with the cell
    #: grown by this margin (``epsilon`` for distance joins, 0 for
    #: intersection joins), which guarantees that the cell containing the
    #: pair's contact point downloads both objects.
    window_margin: float = 0.0

    @abstractmethod
    def matches(self, a: Rect, b: Rect) -> bool:
        """Scalar predicate between two MBRs."""

    @abstractmethod
    def matches_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """All-pairs boolean matrix between two ``(N, 4)`` MBR arrays."""

    @abstractmethod
    def probe_radius(self) -> float:
        """Radius of the epsilon-RANGE probe NLSJ issues for one object.

        An intersection join over point/MBR data degenerates to a zero
        radius probe (a window equal to the object's MBR); a distance join
        probes with radius epsilon.
        """

    @abstractmethod
    def describe(self) -> str:
        """Human-readable description (used by traces and reports)."""


@dataclass(frozen=True)
class IntersectionPredicate(JoinPredicate):
    """MBR intersection (the classical spatial-join filter step)."""

    window_margin: float = 0.0

    def matches(self, a: Rect, b: Rect) -> bool:
        return a.intersects(b)

    def matches_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return rect_array.pairwise_intersects(a, b)

    def probe_radius(self) -> float:
        return 0.0

    def describe(self) -> str:
        return "intersects"


@dataclass(frozen=True)
class WithinDistancePredicate(JoinPredicate):
    """Distance join: minimum MBR separation at most ``epsilon``."""

    epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        # ``window_margin`` is declared on the ABC as a class attribute; for
        # the frozen dataclass we shadow it with an instance attribute.
        object.__setattr__(self, "window_margin", self.epsilon)

    def matches(self, a: Rect, b: Rect) -> bool:
        return a.within_distance(b, self.epsilon)

    def matches_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return rect_array.pairwise_within_distance(a, b, self.epsilon)

    def probe_radius(self) -> float:
        return self.epsilon

    def describe(self) -> str:
        return f"within-distance(eps={self.epsilon:g})"


def predicate_for(kind: str, epsilon: float = 0.0) -> JoinPredicate:
    """Factory used by the public API.

    Parameters
    ----------
    kind:
        ``"intersection"`` or ``"distance"`` (``"within"`` is accepted as an
        alias for ``"distance"``).
    epsilon:
        Distance threshold; required (> 0 recommended) for distance joins,
        ignored for intersection joins.
    """
    k = kind.lower()
    if k in ("intersection", "intersect", "intersects"):
        return IntersectionPredicate()
    if k in ("distance", "within", "within-distance", "epsilon"):
        return WithinDistancePredicate(epsilon=epsilon)
    raise ValueError(f"unknown join predicate kind: {kind!r}")
