"""Axis-aligned rectangles (minimum bounding rectangles, MBRs).

The :class:`Rect` class is the workhorse of the reproduction: query windows,
grid cells, R-tree node MBRs and object MBRs are all ``Rect`` instances.
Degenerate rectangles (zero width and/or height) are allowed and represent
points, which matches the paper's treatment of point datasets as MBRs with
zero extent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    The rectangle is closed on all sides: boundary contact counts as
    intersection, which is the convention used by the paper's window
    queries ("return all the objects intersecting a window w").
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"invalid Rect: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_point(p: Point) -> "Rect":
        """Degenerate rectangle covering a single point."""
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Minimum bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build an MBR from an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Rect":
        """Rectangle centred at ``(cx, cy)`` with the given extent."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return Rect(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty rectangle collection.

        Large collections are reduced through the vectorised
        :mod:`~repro.geometry.rect_array` kernels; short ones (the common
        R-tree node case) keep the scalar loop, which is faster below the
        array-construction break-even.  min/max reductions are exact, so
        both paths return bit-identical bounds.
        """
        if not isinstance(rects, (list, tuple)):
            rects = list(rects)
        if not rects:
            raise ValueError("cannot bound an empty rectangle collection")
        if len(rects) > 32:
            from repro.geometry import rect_array  # deferred: avoids a cycle

            return rect_array.bounding_rect(rect_array.rects_to_array(rects))
        first = rects[0]
        xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
        for r in rects[1:]:
            xmin = min(xmin, r.xmin)
            ymin = min(ymin, r.ymin)
            xmax = max(xmax, r.xmax)
            ymax = max(ymax, r.ymax)
        return Rect(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area (a point or a segment)."""
        return self.width == 0.0 or self.height == 0.0

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def corners(self) -> List[Point]:
        """The four corner points (xmin/ymin first, counter-clockwise)."""
        return [
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        ]

    def __iter__(self) -> Iterator[float]:
        yield self.xmin
        yield self.ymin
        yield self.xmax
        yield self.ymax

    # ------------------------------------------------------------------ #
    # topological predicates
    # ------------------------------------------------------------------ #

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary of the rectangle."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The intersection rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of the two rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to include ``other`` (R-tree ChooseLeaf metric)."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0 when disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area

    # ------------------------------------------------------------------ #
    # distances
    # ------------------------------------------------------------------ #

    def min_distance_to_point(self, p: Point) -> float:
        """Minimum Euclidean distance from the rectangle to a point."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    def min_distance_to_rect(self, other: "Rect") -> float:
        """Minimum Euclidean distance between two rectangles (0 when intersecting)."""
        dx = max(self.xmin - other.xmax, 0.0, other.xmin - self.xmax)
        dy = max(self.ymin - other.ymax, 0.0, other.ymin - self.ymax)
        return math.hypot(dx, dy)

    def within_distance(self, other: "Rect", epsilon: float) -> bool:
        """True when the minimum distance between the rectangles is <= epsilon."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        dx = max(self.xmin - other.xmax, 0.0, other.xmin - self.xmax)
        dy = max(self.ymin - other.ymax, 0.0, other.ymin - self.ymax)
        return dx * dx + dy * dy <= epsilon * epsilon

    # ------------------------------------------------------------------ #
    # derived rectangles
    # ------------------------------------------------------------------ #

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side.

        Used when translating a distance-join cell into a window query: the
        paper extends each cell "by eps/2 at each side" before sending it as
        a window query.  Negative margins shrink the rectangle and raise if
        the result would be inverted.
        """
        return Rect(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def clipped_to(self, bounds: "Rect") -> Optional["Rect"]:
        """Clip this rectangle to ``bounds`` (None when fully outside)."""
        return self.intersection(bounds)

    def quadrants(self) -> List["Rect"]:
        """The four quadrants of the rectangle (2 x 2 regular split).

        Ordering is row-major from the bottom-left: SW, SE, NW, NE.  All
        partition-based algorithms in the paper use this decomposition;
        the midpoint split lives in
        :func:`~repro.geometry.rect_array.quadrant_cells`, whose array
        form the batch kernels consume directly.
        """
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        return [
            Rect(self.xmin, self.ymin, cx, cy),
            Rect(cx, self.ymin, self.xmax, cy),
            Rect(self.xmin, cy, cx, self.ymax),
            Rect(cx, cy, self.xmax, self.ymax),
        ]

    def subdivide(self, kx: int, ky: Optional[int] = None) -> List["Rect"]:
        """Regular ``kx x ky`` grid decomposition (row-major from bottom-left).

        The cell bounds come from the vectorised
        :func:`~repro.geometry.rect_array.subdivide_window` kernel (one
        edge-array computation instead of a per-cell coordinate loop); the
        edges are bit-identical to the scalar formula, so grids frozen in
        golden fixtures cannot drift.
        """
        from repro.geometry import rect_array  # deferred: avoids a cycle

        cells = rect_array.subdivide_window(self, kx, ky)
        return [Rect(x0, y0, x1, y1) for x0, y0, x1, y1 in cells.tolist()]

    def sample_subwindow(
        self, frac_w: float, frac_h: float, u: float, v: float
    ) -> "Rect":
        """A sub-window of relative size ``(frac_w, frac_h)`` positioned by ``(u, v)``.

        ``u`` and ``v`` are offsets in ``[0, 1]`` that place the sub-window's
        lower-left corner within the feasible range.  UpJoin uses this to
        draw the extra *randomly located* COUNT window (one quadrant sized)
        that confirms a uniformity hypothesis.
        """
        for name, val in (("frac_w", frac_w), ("frac_h", frac_h)):
            if not 0.0 < val <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {val}")
        for name, val in (("u", u), ("v", v)):
            if not 0.0 <= val <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {val}")
        w = self.width * frac_w
        h = self.height * frac_h
        x0 = self.xmin + (self.width - w) * u
        y0 = self.ymin + (self.height - h) * v
        return Rect(x0, y0, x0 + w, y0 + h)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Rect([{self.xmin:.6g}, {self.xmax:.6g}] x [{self.ymin:.6g}, {self.ymax:.6g}])"
        )


#: The unit square, the default data space for all synthetic workloads.
UNIT_RECT = Rect(0.0, 0.0, 1.0, 1.0)
