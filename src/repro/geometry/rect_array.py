"""Vectorised operations over ``(N, 4)`` MBR arrays.

Datasets in this reproduction are stored column-major-friendly as NumPy
arrays of shape ``(N, 4)`` with columns ``xmin, ymin, xmax, ymax``.  Points
are simply degenerate MBRs (``xmin == xmax`` and ``ymin == ymax``).  All
server-side filtering (window queries, counts, range queries) and the
in-memory join kernels operate on these arrays without per-object Python
loops, per the HPC guide's "vectorise the hot path" rule.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect

#: dtype used for all MBR arrays.
MBR_DTYPE = np.float64


def empty_mbrs() -> np.ndarray:
    """An empty ``(0, 4)`` MBR array."""
    return np.empty((0, 4), dtype=MBR_DTYPE)


def as_mbr_array(data: np.ndarray) -> np.ndarray:
    """Validate and normalise an input into an ``(N, 4)`` float array.

    Accepts an ``(N, 2)`` point array (expanded to degenerate MBRs) or an
    ``(N, 4)`` MBR array.  Raises :class:`ValueError` for anything else or
    for inverted rectangles.
    """
    arr = np.asarray(data, dtype=MBR_DTYPE)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2D array, got shape {arr.shape}")
    if arr.shape[1] == 2:
        arr = np.hstack([arr, arr])
    elif arr.shape[1] != 4:
        raise ValueError(f"expected (N, 2) points or (N, 4) MBRs, got shape {arr.shape}")
    if arr.shape[0] and (
        np.any(arr[:, 0] > arr[:, 2]) or np.any(arr[:, 1] > arr[:, 3])
    ):
        raise ValueError("MBR array contains inverted rectangles")
    return np.ascontiguousarray(arr)


def points_to_mbrs(points: np.ndarray) -> np.ndarray:
    """Convert an ``(N, 2)`` point array into degenerate ``(N, 4)`` MBRs."""
    pts = np.asarray(points, dtype=MBR_DTYPE)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected an (N, 2) point array, got shape {pts.shape}")
    return np.ascontiguousarray(np.hstack([pts, pts]))


def centers(mbrs: np.ndarray) -> np.ndarray:
    """Centres of an ``(N, 4)`` MBR array as an ``(N, 2)`` array."""
    return np.column_stack(
        [(mbrs[:, 0] + mbrs[:, 2]) * 0.5, (mbrs[:, 1] + mbrs[:, 3]) * 0.5]
    )


def areas(mbrs: np.ndarray) -> np.ndarray:
    """Areas of an ``(N, 4)`` MBR array."""
    return (mbrs[:, 2] - mbrs[:, 0]) * (mbrs[:, 3] - mbrs[:, 1])


def bounding_rect(mbrs: np.ndarray) -> Rect:
    """Minimum bounding rectangle of a non-empty MBR array."""
    if mbrs.shape[0] == 0:
        raise ValueError("cannot bound an empty MBR array")
    return Rect(
        float(mbrs[:, 0].min()),
        float(mbrs[:, 1].min()),
        float(mbrs[:, 2].max()),
        float(mbrs[:, 3].max()),
    )


def intersects_window(mbrs: np.ndarray, window: Rect) -> np.ndarray:
    """Boolean mask of MBRs intersecting a (closed) window."""
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ~(
        (mbrs[:, 2] < window.xmin)
        | (mbrs[:, 0] > window.xmax)
        | (mbrs[:, 3] < window.ymin)
        | (mbrs[:, 1] > window.ymax)
    )


def count_in_window(mbrs: np.ndarray, window: Rect) -> int:
    """Number of MBRs intersecting the window (the COUNT primitive)."""
    return int(np.count_nonzero(intersects_window(mbrs, window)))


def contained_in_window(mbrs: np.ndarray, window: Rect) -> np.ndarray:
    """Boolean mask of MBRs fully contained in the window."""
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return (
        (mbrs[:, 0] >= window.xmin)
        & (mbrs[:, 1] >= window.ymin)
        & (mbrs[:, 2] <= window.xmax)
        & (mbrs[:, 3] <= window.ymax)
    )


def min_distance_to_point(mbrs: np.ndarray, x: float, y: float) -> np.ndarray:
    """Minimum Euclidean distance from each MBR to the point ``(x, y)``."""
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=MBR_DTYPE)
    dx = np.maximum(np.maximum(mbrs[:, 0] - x, 0.0), x - mbrs[:, 2])
    dy = np.maximum(np.maximum(mbrs[:, 1] - y, 0.0), y - mbrs[:, 3])
    return np.hypot(dx, dy)


def within_distance_of_point(
    mbrs: np.ndarray, x: float, y: float, epsilon: float
) -> np.ndarray:
    """Boolean mask of MBRs whose minimum distance to ``(x, y)`` is <= epsilon."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    dx = np.maximum(np.maximum(mbrs[:, 0] - x, 0.0), x - mbrs[:, 2])
    dy = np.maximum(np.maximum(mbrs[:, 1] - y, 0.0), y - mbrs[:, 3])
    return dx * dx + dy * dy <= epsilon * epsilon


def min_distance_to_rect(mbrs: np.ndarray, rect: Rect) -> np.ndarray:
    """Minimum Euclidean distance from each MBR to a rectangle."""
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=MBR_DTYPE)
    dx = np.maximum(np.maximum(mbrs[:, 0] - rect.xmax, 0.0), rect.xmin - mbrs[:, 2])
    dy = np.maximum(np.maximum(mbrs[:, 1] - rect.ymax, 0.0), rect.ymin - mbrs[:, 3])
    return np.hypot(dx, dy)


def within_distance_of_rect(mbrs: np.ndarray, rect: Rect, epsilon: float) -> np.ndarray:
    """Boolean mask of MBRs whose minimum distance to ``rect`` is <= epsilon.

    Matches :meth:`repro.geometry.rect.Rect.within_distance` exactly
    (squared-distance comparison, closed bound), so the vectorised
    refinement paths report the same pairs as the scalar predicate.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if mbrs.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    dx = np.maximum(np.maximum(mbrs[:, 0] - rect.xmax, 0.0), rect.xmin - mbrs[:, 2])
    dy = np.maximum(np.maximum(mbrs[:, 1] - rect.ymax, 0.0), rect.ymin - mbrs[:, 3])
    return dx * dx + dy * dy <= epsilon * epsilon


def expand_index_ranges(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-row ``[start, end)`` index ranges into flat pair arrays.

    Returns ``(row, index)``: for every row ``r`` and every ``i`` in its
    range, one pair ``(r, i)``.  Negative-length ranges count as empty.
    This is the CSR-expansion primitive underneath all batch kernels (the
    plane sweep's candidate runs, the grid hash's cell replication, the
    flattened R-tree's frontier expansion).
    """
    counts = ends - starts
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    row = np.repeat(np.arange(starts.shape[0], dtype=np.intp), counts)
    offs = np.cumsum(counts) - counts
    idx = np.arange(total, dtype=np.intp) - np.repeat(offs, counts) + np.repeat(starts, counts)
    return row, idx


def subdivide_window(window: Rect, kx: int, ky: Optional[int] = None) -> np.ndarray:
    """Cell bounds of a regular ``kx x ky`` grid over ``window``.

    Returns a ``(kx * ky, 4)`` MBR array, row-major from the bottom-left
    cell.  The interior edges are computed as ``min + i * step`` (exact
    outer edges), elementwise-identical to the scalar loop this kernel
    replaced, so grid cells -- which become query windows -- are
    bit-identical to the seed decomposition.  This is the bulk form behind
    :meth:`repro.geometry.rect.Rect.subdivide`, shared by every
    algorithm's repartitioning/grid step.
    """
    if ky is None:
        ky = kx
    if kx < 1 or ky < 1:
        raise ValueError("grid dimensions must be >= 1")
    if kx * ky <= 16:
        # Tiny grids (the algorithms' default 2 x 2 repartitioning, the
        # cost model's c4 estimate): scalar edge arithmetic beats the
        # array-kernel setup cost.  Same formula, same floats.
        dx, dy = window.width / kx, window.height / ky
        xe = [window.xmin + i * dx for i in range(kx)] + [window.xmax]
        ye = [window.ymin + j * dy for j in range(ky)] + [window.ymax]
        return np.array(
            [
                (xe[i], ye[j], xe[i + 1], ye[j + 1])
                for j in range(ky)
                for i in range(kx)
            ],
            dtype=MBR_DTYPE,
        )
    xs = window.xmin + np.arange(kx + 1, dtype=MBR_DTYPE) * (window.width / kx)
    ys = window.ymin + np.arange(ky + 1, dtype=MBR_DTYPE) * (window.height / ky)
    xs[0], xs[kx] = window.xmin, window.xmax
    ys[0], ys[ky] = window.ymin, window.ymax
    out = np.empty((kx * ky, 4), dtype=MBR_DTYPE)
    out[:, 0] = np.tile(xs[:-1], ky)
    out[:, 1] = np.repeat(ys[:-1], kx)
    out[:, 2] = np.tile(xs[1:], ky)
    out[:, 3] = np.repeat(ys[1:], kx)
    return out


def quadrant_cells(window: Rect) -> np.ndarray:
    """The 2 x 2 quadrant bounds of ``window`` as a ``(4, 4)`` MBR array.

    Row-major from the bottom-left: SW, SE, NW, NE.  The split point is the
    midpoint ``(min + max) / 2`` -- the formula the partition-based
    algorithms have always used, which differs in the last float bit from
    ``min + width / 2`` on some inputs, so it is kept separate from
    :func:`subdivide_window` to preserve the frozen traces and figures.
    """
    cx = (window.xmin + window.xmax) / 2.0
    cy = (window.ymin + window.ymax) / 2.0
    return np.array(
        [
            (window.xmin, window.ymin, cx, cy),
            (cx, window.ymin, window.xmax, cy),
            (window.xmin, cy, cx, window.ymax),
            (cx, cy, window.xmax, window.ymax),
        ],
        dtype=MBR_DTYPE,
    )


def clip_to_window(mbrs: np.ndarray, window: Rect) -> Tuple[np.ndarray, np.ndarray]:
    """Clip every MBR to ``window``.

    Returns ``(clipped, valid)`` where ``valid`` marks the MBRs that
    actually intersect the window; rows of ``clipped`` outside ``valid``
    are undefined.  The vectorised twin of ``Rect.intersection``.
    """
    if mbrs.shape[0] == 0:
        return empty_mbrs(), np.zeros(0, dtype=bool)
    clipped = np.empty_like(mbrs)
    clipped[:, 0] = np.maximum(mbrs[:, 0], window.xmin)
    clipped[:, 1] = np.maximum(mbrs[:, 1], window.ymin)
    clipped[:, 2] = np.minimum(mbrs[:, 2], window.xmax)
    clipped[:, 3] = np.minimum(mbrs[:, 3], window.ymax)
    valid = (clipped[:, 0] <= clipped[:, 2]) & (clipped[:, 1] <= clipped[:, 3])
    return clipped, valid


def rects_to_array(rects: "Sequence[Rect]") -> np.ndarray:
    """Pack a sequence of :class:`Rect` into an ``(N, 4)`` MBR array."""
    if not rects:
        return empty_mbrs()
    return np.array([r.as_tuple() for r in rects], dtype=MBR_DTYPE)


def pairwise_intersects(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs intersection test between two MBR arrays.

    Returns a boolean matrix of shape ``(len(a), len(b))``.  Used only by
    small in-memory joins and by the brute-force oracle in the tests; the
    production kernels use plane sweep / grid hashing instead.
    """
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=bool)
    ax0, ay0, ax1, ay1 = (a[:, i][:, None] for i in range(4))
    bx0, by0, bx1, by1 = (b[:, i][None, :] for i in range(4))
    return ~((ax1 < bx0) | (bx1 < ax0) | (ay1 < by0) | (by1 < ay0))


def pairwise_within_distance(a: np.ndarray, b: np.ndarray, epsilon: float) -> np.ndarray:
    """All-pairs epsilon-distance test between two MBR arrays.

    The distance between two MBRs is their minimum separation; intersecting
    MBRs are at distance zero.  Returns a boolean matrix of shape
    ``(len(a), len(b))``.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=bool)
    ax0, ay0, ax1, ay1 = (a[:, i][:, None] for i in range(4))
    bx0, by0, bx1, by1 = (b[:, i][None, :] for i in range(4))
    dx = np.maximum(np.maximum(ax0 - bx1, 0.0), bx0 - ax1)
    dy = np.maximum(np.maximum(ay0 - by1, 0.0), by0 - ay1)
    return dx * dx + dy * dy <= epsilon * epsilon


def expand(mbrs: np.ndarray, margin: float) -> np.ndarray:
    """Return a copy of the MBR array grown by ``margin`` on every side."""
    if margin < 0:
        raise ValueError("margin must be non-negative")
    out = mbrs.copy()
    out[:, 0] -= margin
    out[:, 1] -= margin
    out[:, 2] += margin
    out[:, 3] += margin
    return out


def split_by_grid(
    mbrs: np.ndarray, window: Rect, kx: int, ky: int
) -> Tuple[np.ndarray, ...]:
    """Assign each MBR centre to a cell of a ``kx x ky`` grid over ``window``.

    Returns a tuple of index arrays, one per cell in row-major order from
    the bottom-left cell, partitioning ``range(len(mbrs))`` by the grid cell
    containing each MBR's centre (centre-based declustering; replication-
    free, used only for diagnostics -- the join algorithms themselves use
    intersection-based windows served by the servers).
    """
    if kx < 1 or ky < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = mbrs.shape[0]
    if n == 0:
        return tuple(np.empty(0, dtype=np.intp) for _ in range(kx * ky))
    c = centers(mbrs)
    fx = np.clip(((c[:, 0] - window.xmin) / max(window.width, 1e-300)) * kx, 0, kx - 1)
    fy = np.clip(((c[:, 1] - window.ymin) / max(window.height, 1e-300)) * ky, 0, ky - 1)
    cell = fy.astype(np.intp) * kx + fx.astype(np.intp)
    order = np.argsort(cell, kind="stable")
    sorted_cells = cell[order]
    boundaries = np.searchsorted(sorted_cells, np.arange(kx * ky + 1))
    return tuple(
        order[boundaries[i] : boundaries[i + 1]] for i in range(kx * ky)
    )
