"""Synthetic point-dataset generators.

The paper's synthetic workloads are "1000 points ... clustered around k
randomly selected centers, and for each cluster the distribution of objects
was Gaussian. In order to achieve different skew levels, we varied k from 1
to 128."  :func:`clustered` reproduces exactly that; :func:`uniform` and
:func:`gaussian_mixture` are provided for tests, ablations and examples.

All generators are deterministic given a seed and emit points inside the
unit square (out-of-range Gaussian samples are re-drawn, not clipped, so
cluster shapes are not distorted at the borders).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.geometry.rect import Rect, UNIT_RECT

__all__ = ["clustered", "uniform", "gaussian_mixture"]


def clustered(
    n: int = 1000,
    clusters: int = 8,
    seed: int = 0,
    std: float = 0.015,
    bounds: Rect = UNIT_RECT,
    name: Optional[str] = None,
) -> SpatialDataset:
    """The paper's clustered-Gaussian point generator.

    Parameters
    ----------
    n:
        Number of points (the paper uses 1 000).
    clusters:
        Number of cluster centres ``k``; ``k = 1`` is extremely skewed,
        ``k = 128`` is effectively uniform (the paper's reading).
    seed:
        RNG seed; cluster centres and point noise both derive from it.
    std:
        Standard deviation of each Gaussian cluster, in dataspace units.
    bounds:
        Data space (defaults to the unit square).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    if std <= 0:
        raise ValueError("std must be positive")
    rng = np.random.default_rng(seed)
    centers = np.column_stack(
        [
            rng.uniform(bounds.xmin, bounds.xmax, size=clusters),
            rng.uniform(bounds.ymin, bounds.ymax, size=clusters),
        ]
    )
    # Points are distributed round-robin over clusters so every cluster gets
    # n/k points (the paper: "each cluster contains 500 points" for k=2).
    assignment = np.arange(n) % clusters
    rng.shuffle(assignment)
    points = _rejection_gaussian(rng, centers[assignment], std, bounds)
    return SpatialDataset.from_points(
        points,
        name=name or f"clustered(n={n},k={clusters},seed={seed})",
        metadata={
            "generator": "clustered",
            "n": n,
            "clusters": clusters,
            "seed": seed,
            "std": std,
        },
    )


def uniform(
    n: int = 1000,
    seed: int = 0,
    bounds: Rect = UNIT_RECT,
    name: Optional[str] = None,
) -> SpatialDataset:
    """Uniformly distributed points over ``bounds``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            rng.uniform(bounds.xmin, bounds.xmax, size=n),
            rng.uniform(bounds.ymin, bounds.ymax, size=n),
        ]
    )
    return SpatialDataset.from_points(
        points,
        name=name or f"uniform(n={n},seed={seed})",
        metadata={"generator": "uniform", "n": n, "seed": seed},
    )


def gaussian_mixture(
    n: int,
    centers: Sequence[Tuple[float, float]],
    weights: Optional[Sequence[float]] = None,
    std: float = 0.05,
    seed: int = 0,
    bounds: Rect = UNIT_RECT,
    name: Optional[str] = None,
) -> SpatialDataset:
    """A Gaussian mixture with explicit centres and weights.

    Used to construct the adversarial layouts of Figures 2 and 4 of the
    paper (clusters placed in specific quadrants) and by the examples.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not centers:
        raise ValueError("at least one centre is required")
    centers_arr = np.asarray(centers, dtype=np.float64)
    if centers_arr.ndim != 2 or centers_arr.shape[1] != 2:
        raise ValueError("centers must be a sequence of (x, y) pairs")
    if weights is None:
        weights_arr = np.full(len(centers), 1.0 / len(centers))
    else:
        weights_arr = np.asarray(weights, dtype=np.float64)
        if weights_arr.shape != (len(centers),):
            raise ValueError("weights must be parallel to centers")
        if np.any(weights_arr < 0) or weights_arr.sum() == 0:
            raise ValueError("weights must be non-negative and not all zero")
        weights_arr = weights_arr / weights_arr.sum()
    rng = np.random.default_rng(seed)
    assignment = rng.choice(len(centers), size=n, p=weights_arr)
    points = _rejection_gaussian(rng, centers_arr[assignment], std, bounds)
    return SpatialDataset.from_points(
        points,
        name=name or f"mixture(n={n},m={len(centers)},seed={seed})",
        metadata={
            "generator": "gaussian_mixture",
            "n": n,
            "centers": [tuple(c) for c in centers_arr.tolist()],
            "std": std,
            "seed": seed,
        },
    )


def _rejection_gaussian(
    rng: np.random.Generator,
    means: np.ndarray,
    std: float,
    bounds: Rect,
    max_rounds: int = 64,
) -> np.ndarray:
    """Sample one Gaussian point per row of ``means``, rejecting out-of-bounds draws.

    After ``max_rounds`` of rejection the few remaining stragglers are
    clamped; with the default parameters this never triggers in practice
    but keeps the generator total.
    """
    n = means.shape[0]
    points = np.empty((n, 2), dtype=np.float64)
    pending = np.arange(n)
    for _ in range(max_rounds):
        if pending.size == 0:
            break
        draw = means[pending] + rng.normal(0.0, std, size=(pending.size, 2))
        ok = (
            (draw[:, 0] >= bounds.xmin)
            & (draw[:, 0] <= bounds.xmax)
            & (draw[:, 1] >= bounds.ymin)
            & (draw[:, 1] <= bounds.ymax)
        )
        points[pending[ok]] = draw[ok]
        pending = pending[~ok]
    if pending.size:
        draw = means[pending] + rng.normal(0.0, std, size=(pending.size, 2))
        points[pending, 0] = np.clip(draw[:, 0], bounds.xmin, bounds.xmax)
        points[pending, 1] = np.clip(draw[:, 1], bounds.ymin, bounds.ymax)
    return points
