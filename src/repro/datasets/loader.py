"""Saving and loading datasets.

Datasets are persisted as ``.npz`` archives holding the MBR array, the id
array and a JSON-encoded metadata blob, so that experiment inputs can be
archived next to their results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.dataset import SpatialDataset

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: SpatialDataset, path: Union[str, Path]) -> Path:
    """Write a dataset to ``path`` (``.npz`` is appended when missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        mbrs=dataset.mbrs,
        oids=dataset.oids,
        name=np.array(dataset.name),
        metadata=np.array(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path: Union[str, Path]) -> SpatialDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        mbrs = archive["mbrs"]
        oids = archive["oids"]
        name = str(archive["name"])
        metadata = json.loads(str(archive["metadata"]))
    return SpatialDataset(mbrs=mbrs, oids=oids, name=name, metadata=metadata)
