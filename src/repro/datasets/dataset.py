"""The :class:`SpatialDataset` container.

A dataset is an immutable collection of spatial objects, stored as an
``(N, 4)`` MBR array plus a parallel object-id array.  Point datasets are
degenerate MBRs.  Servers are constructed from datasets; the join
algorithms themselves never touch a dataset directly (they only see the
server interfaces), but tests and the brute-force oracles do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["SpatialDataset"]


@dataclass(frozen=True)
class SpatialDataset:
    """An immutable set of spatial objects.

    Parameters
    ----------
    mbrs:
        ``(N, 4)`` array of object MBRs (``xmin, ymin, xmax, ymax``).
    oids:
        Optional ``(N,)`` integer id array; defaults to ``0..N-1``.
    name:
        Human-readable name used in traces and reports.
    metadata:
        Free-form generator parameters (cluster count, seed, ...), kept so
        experiments can be reproduced from a result file alone.
    """

    mbrs: np.ndarray
    oids: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        mbrs = rect_array.as_mbr_array(self.mbrs)
        object.__setattr__(self, "mbrs", mbrs)
        if self.oids is None:
            oids = np.arange(mbrs.shape[0], dtype=np.int64)
        else:
            oids = np.asarray(self.oids, dtype=np.int64)
            if oids.shape != (mbrs.shape[0],):
                raise ValueError("oids must be a 1D array parallel to mbrs")
            if len(np.unique(oids)) != oids.shape[0]:
                raise ValueError("oids must be unique")
        object.__setattr__(self, "oids", oids)
        mbrs.setflags(write=False)
        oids.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_points(
        points: np.ndarray,
        name: str = "points",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "SpatialDataset":
        """Build a dataset of degenerate MBRs from an ``(N, 2)`` point array."""
        return SpatialDataset(
            mbrs=rect_array.points_to_mbrs(points),
            name=name,
            metadata=dict(metadata or {}),
        )

    @staticmethod
    def from_rects(
        rects: Sequence[Rect],
        name: str = "rects",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "SpatialDataset":
        """Build a dataset from a sequence of :class:`Rect` objects."""
        if rects:
            arr = np.array([r.as_tuple() for r in rects], dtype=rect_array.MBR_DTYPE)
        else:
            arr = rect_array.empty_mbrs()
        return SpatialDataset(mbrs=arr, name=name, metadata=dict(metadata or {}))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.mbrs.shape[0])

    def __iter__(self) -> Iterator[Tuple[Rect, int]]:
        for row, oid in zip(self.mbrs, self.oids):
            yield Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3])), int(oid)

    @property
    def is_point_data(self) -> bool:
        """True when every object is a degenerate (point) MBR."""
        if len(self) == 0:
            return True
        return bool(
            np.all(self.mbrs[:, 0] == self.mbrs[:, 2])
            and np.all(self.mbrs[:, 1] == self.mbrs[:, 3])
        )

    def bounds(self) -> Rect:
        """The MBR of the whole dataset (raises for an empty dataset)."""
        return rect_array.bounding_rect(self.mbrs)

    def centers(self) -> np.ndarray:
        """Object centres as an ``(N, 2)`` array."""
        return rect_array.centers(self.mbrs)

    def rect_of(self, oid: int) -> Rect:
        """The MBR of one object by id."""
        idx = self._index_of(oid)
        row = self.mbrs[idx]
        return Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))

    def center_of(self, oid: int) -> Point:
        """The centre point of one object by id."""
        return self.rect_of(oid).center

    # ------------------------------------------------------------------ #
    # filtering (used by servers and oracles; vectorised)
    # ------------------------------------------------------------------ #

    def window_mask(self, window: Rect) -> np.ndarray:
        """Boolean mask of objects intersecting the window."""
        return rect_array.intersects_window(self.mbrs, window)

    def count_in_window(self, window: Rect) -> int:
        """Number of objects intersecting the window."""
        return rect_array.count_in_window(self.mbrs, window)

    def subset(self, mask: np.ndarray, name: Optional[str] = None) -> "SpatialDataset":
        """A new dataset containing only the masked objects (ids preserved)."""
        return SpatialDataset(
            mbrs=self.mbrs[mask],
            oids=self.oids[mask],
            name=name or self.name,
            metadata=dict(self.metadata),
        )

    def clip_to_window(self, window: Rect) -> "SpatialDataset":
        """Objects intersecting the window (ids preserved)."""
        return self.subset(self.window_mask(window), name=f"{self.name}|{window}")

    def within_distance_of(self, center: Point, epsilon: float) -> "SpatialDataset":
        """Objects within ``epsilon`` of ``center`` (ids preserved)."""
        mask = rect_array.within_distance_of_point(self.mbrs, center.x, center.y, epsilon)
        return self.subset(mask)

    def average_mbr_area_in(self, window: Rect) -> float:
        """Average object-MBR area over a window (0.0 when empty)."""
        mask = self.window_mask(window)
        if not np.any(mask):
            return 0.0
        return float(rect_array.areas(self.mbrs[mask]).mean())

    # ------------------------------------------------------------------ #

    def rename(self, name: str) -> "SpatialDataset":
        """A shallow copy with a different name."""
        return SpatialDataset(
            mbrs=self.mbrs, oids=self.oids, name=name, metadata=dict(self.metadata)
        )

    def entries(self) -> List[Tuple[Rect, int]]:
        """All ``(Rect, oid)`` pairs, materialised once and cached.

        The servers build their indexes straight from the ``mbrs`` array;
        this list form remains for the incremental-construction APIs, the
        oracles and the tests.  Returns a fresh shallow copy per call (the
        tuples are shared, the list is the caller's), preserving the
        pre-cache aliasing contract.
        """
        cached = self.__dict__.get("_entries_cache")
        if cached is None:
            cached = list(iter(self))
            object.__setattr__(self, "_entries_cache", cached)
        return list(cached)

    def _index_of(self, oid: int) -> int:
        idx = np.nonzero(self.oids == oid)[0]
        if idx.size == 0:
            raise KeyError(f"no object with id {oid} in dataset {self.name!r}")
        return int(idx[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SpatialDataset(name={self.name!r}, n={len(self)})"
