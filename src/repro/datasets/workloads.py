"""Workload specifications and query-window generators.

The experiments of the paper always join a *query window* worth of data:
the 1 000-point synthetic datasets "simulate typical windows of users'
requests", i.e. the joined region is the full unit square holding the
synthetic data; the real-data experiments join the synthetic window against
the corresponding region of the railway map.

:class:`WorkloadSpec` bundles everything an experiment needs to regenerate
a run (dataset parameters, join parameters, device parameters), and
:func:`paper_cluster_sweep` yields the cluster-count sweep used on the
x-axis of every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect, UNIT_RECT

__all__ = ["WorkloadSpec", "paper_cluster_sweep", "random_query_windows"]

#: The cluster counts on the x-axis of Figures 6, 7 and 8.
PAPER_CLUSTER_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 128)


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully reproducible experiment workload.

    Attributes
    ----------
    r_kind / s_kind:
        Dataset generators for the two sides: ``"clustered"``, ``"uniform"``
        or ``"railway"``.
    r_size / s_size:
        Object counts (ignored by the railway generator which has its own
        default of ~35 000).
    clusters:
        Cluster count for clustered sides.
    seed:
        Base seed; the R side uses ``seed`` and the S side ``seed + 1000``
        so the two datasets are independent but reproducible.
    epsilon:
        Distance-join threshold in dataspace units.
    buffer_size:
        PDA buffer capacity in objects.
    bucket_queries:
        Whether servers accept bucket epsilon-RANGE queries.
    window:
        The joined region (defaults to the unit square).
    """

    r_kind: str = "clustered"
    s_kind: str = "clustered"
    r_size: int = 1000
    s_size: int = 1000
    clusters: int = 8
    seed: int = 0
    epsilon: float = 0.02
    buffer_size: int = 800
    bucket_queries: bool = False
    window: Rect = UNIT_RECT
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = ("clustered", "uniform", "railway")
        for kind in (self.r_kind, self.s_kind):
            if kind not in valid:
                raise ValueError(f"unknown dataset kind {kind!r}; valid: {valid}")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")

    def with_clusters(self, clusters: int) -> "WorkloadSpec":
        return replace(self, clusters=clusters)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return replace(self, seed=seed)

    def with_buffer(self, buffer_size: int) -> "WorkloadSpec":
        return replace(self, buffer_size=buffer_size)

    def describe(self) -> str:
        return (
            f"{self.r_kind}({self.r_size}) x {self.s_kind}({self.s_size}), "
            f"k={self.clusters}, eps={self.epsilon:g}, buffer={self.buffer_size}, "
            f"bucket={self.bucket_queries}, seed={self.seed}"
        )


def paper_cluster_sweep(
    base: WorkloadSpec, cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS
) -> Iterator[WorkloadSpec]:
    """Yield one workload per cluster count of the paper's x-axis."""
    for k in cluster_counts:
        yield base.with_clusters(k)


def random_query_windows(
    count: int,
    relative_size: float = 0.25,
    seed: int = 0,
    bounds: Rect = UNIT_RECT,
) -> List[Rect]:
    """Random square query windows of a given relative side length.

    Used by the examples and by the multi-window ablation: each window has
    side ``relative_size * bounds.width`` and lies fully inside ``bounds``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 < relative_size <= 1.0:
        raise ValueError("relative_size must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    side_x = bounds.width * relative_size
    side_y = bounds.height * relative_size
    xs = rng.uniform(bounds.xmin, bounds.xmax - side_x, size=count)
    ys = rng.uniform(bounds.ymin, bounds.ymax - side_y, size=count)
    return [Rect(float(x), float(y), float(x) + side_x, float(y) + side_y) for x, y in zip(xs, ys)]
