"""Dataset containers and synthetic workload generators.

The paper's evaluation uses

* synthetic datasets of 1 000 points clustered around ``k`` random centres
  with Gaussian spread (``k`` in {1, 2, 4, 8, 16, 128} controls the skew),
* a real dataset of ~35 000 German railway segments.

The real dataset is not redistributable, so
:func:`~repro.datasets.railway.generate_railway_like` synthesises a
polyline network with the same cardinality, small-segment MBRs and strong
1-D corridor clustering (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from repro.datasets.dataset import SpatialDataset
from repro.datasets.partition import (
    PARTITION_SCHEMES,
    partition_dataset,
    shard_assignment,
)
from repro.datasets.synthetic import clustered, gaussian_mixture, uniform
from repro.datasets.railway import generate_railway_like
from repro.datasets.workloads import (
    WorkloadSpec,
    paper_cluster_sweep,
    random_query_windows,
)
from repro.datasets.loader import load_dataset, save_dataset

__all__ = [
    "SpatialDataset",
    "PARTITION_SCHEMES",
    "partition_dataset",
    "shard_assignment",
    "clustered",
    "uniform",
    "gaussian_mixture",
    "generate_railway_like",
    "WorkloadSpec",
    "paper_cluster_sweep",
    "random_query_windows",
    "load_dataset",
    "save_dataset",
]
