"""Deterministic spatial partitioning of a dataset across shard servers.

The sharded data plane splits one published :class:`SpatialDataset` into N
disjoint shards, each hosted by its own spatial server.  Two schemes:

* ``"grid"`` -- a fixed ``gx x gy`` grid over the dataset bounds (``gx * gy
  == shards``, with ``gx`` the largest divisor of ``shards`` not exceeding
  ``sqrt(shards)``); every object is assigned to the cell holding its MBR
  centre.  Cheap and oblivious to skew: clustered data can leave cells
  (shards) nearly empty.
* ``"str"`` -- STR-style tiling: objects are sorted by centre x and cut
  into ``gx`` vertical slabs of (near-)equal cardinality, each slab sorted
  by centre y and cut into ``gy`` tiles.  Balanced under any skew, at the
  cost of data-dependent shard boundaries.

Both schemes are pure functions of ``(dataset, shards, scheme)`` -- no RNG,
no iteration order dependence -- so every execution path (standalone,
brokered, benchmark) sees the same placement.  Shards partition the object
set *exactly*: every object lands in exactly one shard, object ids are
preserved, and the concatenation of all shards is a permutation of the
original rows.  That disjointness is what makes scatter/merge answers
bit-identical to the union server's (counts add up, window payload row sets
are equal per window); empty shards are legal and simply never answer.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.dataset import SpatialDataset

__all__ = ["PARTITION_SCHEMES", "partition_dataset", "shard_assignment"]

#: Recognised partitioning scheme names.
PARTITION_SCHEMES: Tuple[str, ...] = ("grid", "str")


def _grid_shape(shards: int) -> Tuple[int, int]:
    """The ``(gx, gy)`` factorisation used by both schemes.

    ``gx`` is the largest divisor of ``shards`` with ``gx * gx <= shards``,
    so the grid is as square as an exact factorisation allows (a prime
    shard count degenerates to ``1 x shards`` strips).
    """
    gx = int(np.sqrt(shards))
    while shards % gx:
        gx -= 1
    return gx, shards // gx


def shard_assignment(
    dataset: SpatialDataset, shards: int, scheme: str = "grid"
) -> np.ndarray:
    """Per-object shard ids: an ``(N,)`` int array with values in ``[0, shards)``.

    Deterministic in the dataset's row order; see the module docstring for
    the two schemes.  ``shards`` may exceed the object count (the surplus
    shards come out empty) and never needs to divide it.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if scheme not in PARTITION_SCHEMES:
        raise ValueError(
            f"unknown partition scheme {scheme!r}; available: {PARTITION_SCHEMES}"
        )
    n = len(dataset)
    if n == 0 or shards == 1:
        return np.zeros(n, dtype=np.int64)
    gx, gy = _grid_shape(shards)
    centers = dataset.centers()
    if scheme == "grid":
        lo = dataset.mbrs.min(axis=0)
        hi = dataset.mbrs.max(axis=0)
        xmin, ymin = float(lo[0]), float(lo[1])
        xmax, ymax = float(hi[2]), float(hi[3])
        # Degenerate extents (all centres collinear) collapse to column 0.
        spanx = max(xmax - xmin, 0.0)
        spany = max(ymax - ymin, 0.0)
        if spanx > 0:
            ix = np.clip(
                ((centers[:, 0] - xmin) / spanx * gx).astype(np.int64), 0, gx - 1
            )
        else:
            ix = np.zeros(n, dtype=np.int64)
        if spany > 0:
            iy = np.clip(
                ((centers[:, 1] - ymin) / spany * gy).astype(np.int64), 0, gy - 1
            )
        else:
            iy = np.zeros(n, dtype=np.int64)
        return iy * gx + ix
    # STR tiling: stable sorts keep ties in row order, so the assignment is
    # a pure function of the dataset rows.
    assignment = np.empty(n, dtype=np.int64)
    order_x = np.argsort(centers[:, 0], kind="stable")
    slab_bounds = (np.arange(gx + 1, dtype=np.int64) * n) // gx
    for sx in range(gx):
        slab = order_x[slab_bounds[sx] : slab_bounds[sx + 1]]
        order_y = slab[np.argsort(centers[slab, 1], kind="stable")]
        m = order_y.shape[0]
        tile_bounds = (np.arange(gy + 1, dtype=np.int64) * m) // gy
        for sy in range(gy):
            assignment[order_y[tile_bounds[sy] : tile_bounds[sy + 1]]] = sy * gx + sx
    return assignment


def partition_dataset(
    dataset: SpatialDataset, shards: int, scheme: str = "grid"
) -> List[SpatialDataset]:
    """Split one dataset into ``shards`` disjoint shard datasets.

    Returns exactly ``shards`` datasets named ``"<name>#<i>"``; object ids
    are preserved (:meth:`SpatialDataset.subset`), rows keep their relative
    order within a shard, and every original row appears in exactly one
    shard.  Shards with no objects are returned as empty datasets rather
    than dropped, so shard indices are stable identifiers.
    """
    assignment = shard_assignment(dataset, shards, scheme)
    return [
        dataset.subset(assignment == i, name=f"{dataset.name}#{i}")
        for i in range(shards)
    ]
