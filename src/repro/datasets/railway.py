"""Railway-like segment dataset generator.

The paper's "real" dataset is the MBRs of roughly 35 000 German railway
segments.  That dataset is not redistributable, so this module synthesises
a stand-in with the same statistical character (see DESIGN.md):

* a backbone of *hub cities* placed with a preferential bias towards a few
  dense regions (the Ruhr-like blob, a handful of metropolises),
* corridors (polylines) connecting nearby hubs, built over a Delaunay-free
  nearest-neighbour graph so the network is connected and roughly planar,
* local jitter that bends each corridor into a sequence of many short
  segments, plus branch lines radiating from hubs,
* each segment contributes one small, elongated MBR.

The result is ~35 000 MBRs that are strongly clustered along 1-D corridors,
leaving most of the plane empty -- the property that makes the paper's
Figure 8 experiments interesting (pruning pays off on the real dataset).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.geometry.rect import Rect, UNIT_RECT

__all__ = ["generate_railway_like"]


def generate_railway_like(
    n_segments: int = 35_000,
    seed: int = 0,
    hubs: int = 60,
    branch_fraction: float = 0.25,
    jitter: float = 0.004,
    bounds: Rect = UNIT_RECT,
    name: Optional[str] = None,
) -> SpatialDataset:
    """Generate a railway-network-like segment MBR dataset.

    Parameters
    ----------
    n_segments:
        Target number of segment MBRs (the German railway dataset used in
        the paper has ~35 K).  The generator may emit a handful fewer if
        the corridor budget does not divide exactly; never more.
    seed:
        RNG seed.
    hubs:
        Number of hub cities in the backbone network.
    branch_fraction:
        Fraction of the segment budget spent on local branch lines around
        hubs rather than inter-hub corridors.
    jitter:
        Magnitude of the per-vertex perpendicular jitter that bends
        corridors (data-space units).
    bounds:
        Data space (defaults to the unit square).
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if hubs < 2:
        raise ValueError("hubs must be >= 2")
    if not 0.0 <= branch_fraction < 1.0:
        raise ValueError("branch_fraction must lie in [0, 1)")
    rng = np.random.default_rng(seed)

    hub_xy = _place_hubs(rng, hubs, bounds)
    corridors = _hub_corridors(hub_xy)

    branch_budget = int(n_segments * branch_fraction)
    corridor_budget = n_segments - branch_budget

    segments: List[Tuple[float, float, float, float]] = []
    segments.extend(
        _corridor_segments(rng, hub_xy, corridors, corridor_budget, jitter, bounds)
    )
    segments.extend(_branch_segments(rng, hub_xy, branch_budget, jitter, bounds))
    segments = segments[:n_segments]

    mbrs = np.empty((len(segments), 4), dtype=np.float64)
    for i, (x0, y0, x1, y1) in enumerate(segments):
        mbrs[i, 0] = min(x0, x1)
        mbrs[i, 1] = min(y0, y1)
        mbrs[i, 2] = max(x0, x1)
        mbrs[i, 3] = max(y0, y1)
    np.clip(mbrs[:, 0::2], bounds.xmin, bounds.xmax, out=mbrs[:, 0::2])
    np.clip(mbrs[:, 1::2], bounds.ymin, bounds.ymax, out=mbrs[:, 1::2])

    return SpatialDataset(
        mbrs=mbrs,
        name=name or f"railway-like(n={len(segments)},seed={seed})",
        metadata={
            "generator": "railway_like",
            "n_segments": n_segments,
            "seed": seed,
            "hubs": hubs,
            "branch_fraction": branch_fraction,
            "jitter": jitter,
        },
    )


# -------------------------------------------------------------------------- #
# internals
# -------------------------------------------------------------------------- #


def _place_hubs(rng: np.random.Generator, hubs: int, bounds: Rect) -> np.ndarray:
    """Hub cities: a few dense metropolitan blobs plus scattered towns."""
    n_metro = max(2, hubs // 5)
    metro_centers = np.column_stack(
        [
            rng.uniform(bounds.xmin + 0.15 * bounds.width, bounds.xmax - 0.15 * bounds.width, n_metro),
            rng.uniform(bounds.ymin + 0.15 * bounds.height, bounds.ymax - 0.15 * bounds.height, n_metro),
        ]
    )
    n_metro_hubs = hubs // 2
    metro_pick = rng.integers(0, n_metro, size=n_metro_hubs)
    metro_hubs = metro_centers[metro_pick] + rng.normal(0.0, 0.04, size=(n_metro_hubs, 2))
    n_town = hubs - n_metro_hubs
    towns = np.column_stack(
        [
            rng.uniform(bounds.xmin, bounds.xmax, n_town),
            rng.uniform(bounds.ymin, bounds.ymax, n_town),
        ]
    )
    hub_xy = np.vstack([metro_hubs, towns])
    np.clip(hub_xy[:, 0], bounds.xmin, bounds.xmax, out=hub_xy[:, 0])
    np.clip(hub_xy[:, 1], bounds.ymin, bounds.ymax, out=hub_xy[:, 1])
    return hub_xy


def _hub_corridors(hub_xy: np.ndarray) -> List[Tuple[int, int]]:
    """Connect each hub to its 2-3 nearest neighbours (deduplicated edges)."""
    n = hub_xy.shape[0]
    d2 = (
        (hub_xy[:, None, 0] - hub_xy[None, :, 0]) ** 2
        + (hub_xy[:, None, 1] - hub_xy[None, :, 1]) ** 2
    )
    np.fill_diagonal(d2, np.inf)
    edges = set()
    for i in range(n):
        neighbours = np.argsort(d2[i])[: 3 if i % 2 else 2]
        for j in neighbours:
            edges.add((min(i, int(j)), max(i, int(j))))
    return sorted(edges)


def _corridor_segments(
    rng: np.random.Generator,
    hub_xy: np.ndarray,
    corridors: List[Tuple[int, int]],
    budget: int,
    jitter: float,
    bounds: Rect,
) -> List[Tuple[float, float, float, float]]:
    """Split every corridor into short, jittered segments; total ~= budget."""
    if budget <= 0 or not corridors:
        return []
    lengths = np.array(
        [
            math.hypot(
                hub_xy[a, 0] - hub_xy[b, 0], hub_xy[a, 1] - hub_xy[b, 1]
            )
            for a, b in corridors
        ]
    )
    total_len = float(lengths.sum())
    if total_len == 0.0:
        return []
    segments: List[Tuple[float, float, float, float]] = []
    for (a, b), length in zip(corridors, lengths):
        pieces = max(1, int(round(budget * length / total_len)))
        ax, ay = hub_xy[a]
        bx, by = hub_xy[b]
        # Unit normal of the corridor, for perpendicular jitter.
        if length > 0:
            nx, ny = -(by - ay) / length, (bx - ax) / length
        else:
            nx, ny = 0.0, 0.0
        ts = np.linspace(0.0, 1.0, pieces + 1)
        offs = np.cumsum(rng.normal(0.0, jitter, size=pieces + 1))
        offs -= np.linspace(offs[0], offs[-1], pieces + 1)  # pin both endpoints
        xs = ax + ts * (bx - ax) + offs * nx
        ys = ay + ts * (by - ay) + offs * ny
        for i in range(pieces):
            segments.append((xs[i], ys[i], xs[i + 1], ys[i + 1]))
            if len(segments) >= budget:
                return segments
    return segments


def _branch_segments(
    rng: np.random.Generator,
    hub_xy: np.ndarray,
    budget: int,
    jitter: float,
    bounds: Rect,
) -> List[Tuple[float, float, float, float]]:
    """Short branch lines radiating out of random hubs."""
    segments: List[Tuple[float, float, float, float]] = []
    if budget <= 0:
        return segments
    n_hubs = hub_xy.shape[0]
    while len(segments) < budget:
        hub = hub_xy[rng.integers(0, n_hubs)]
        angle = rng.uniform(0.0, 2.0 * math.pi)
        branch_len = rng.uniform(0.01, 0.08)
        pieces = max(1, int(branch_len / 0.004))
        x, y = float(hub[0]), float(hub[1])
        dx = math.cos(angle) * branch_len / pieces
        dy = math.sin(angle) * branch_len / pieces
        for _ in range(pieces):
            nx = x + dx + rng.normal(0.0, jitter)
            ny = y + dy + rng.normal(0.0, jitter)
            nx = min(max(nx, bounds.xmin), bounds.xmax)
            ny = min(max(ny, bounds.ymin), bounds.ymax)
            segments.append((x, y, nx, ny))
            x, y = nx, ny
            if len(segments) >= budget:
                break
    return segments
