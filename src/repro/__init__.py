"""repro -- reproduction of "Ad-hoc Distributed Spatial Joins on Mobile Devices".

This package reimplements, in pure Python + NumPy, the system described in

    P. Kalnis, N. Mamoulis, S. Bakiras, X. Li.
    "Ad-hoc Distributed Spatial Joins on Mobile Devices", IPDPS 2006.

The package is organised around the paper's architecture:

``repro.geometry``
    Planar geometry primitives: points, rectangles (MBRs), segments,
    regular grids and the predicates used by spatial joins.

``repro.index``
    Spatial index substrates: an R-tree (insertion + STR bulk loading), an
    aggregate R-tree (fast COUNT / aggregate window queries), a regular
    grid index and the in-memory join kernels (plane sweep, grid hash).

``repro.network``
    The wireless transfer-cost substrate: packetisation (Eq. 1 of the
    paper), per-byte tariffs, byte-accounting channels, a discrete-event
    simulation kernel and an IEEE 802.11b link model.

``repro.server``
    Non-cooperative spatial servers exposing only WINDOW / COUNT /
    epsilon-RANGE queries, plus the remote proxies that meter every
    request/response through a channel.

``repro.device``
    The mobile-device (PDA) model: bounded object buffer, hash-based
    spatial join (HBSJ), nested-loop spatial join (NLSJ) via remote range
    queries, and duplicate avoidance.

``repro.core``
    The paper's contribution: the transfer cost model (Eqs. 1-8), the
    MobiJoin baseline, the distribution-aware UpJoin and SrJoin
    algorithms, the indexed SemiJoin comparator and the ad-hoc join
    planner facade.

``repro.datasets``
    Synthetic workload generators (clustered Gaussian point sets, uniform
    sets, a railway-like polyline network standing in for the paper's
    German railway dataset) and dataset containers.

``repro.experiments``
    The experiment harness that regenerates every figure of the paper's
    evaluation section.

Quickstart
----------

>>> from repro import quick_join
>>> from repro.datasets import clustered
>>> r = clustered(n=1000, clusters=8, seed=1)
>>> s = clustered(n=1000, clusters=8, seed=2)
>>> result = quick_join(r, s, algorithm="srjoin", epsilon=0.01, buffer_size=800)
>>> result.total_bytes > 0
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.api import (
    AdHocJoinSession,
    JoinOutcome,
    available_algorithms,
    quick_join,
)

__all__ = [
    "__version__",
    "AdHocJoinSession",
    "JoinOutcome",
    "available_algorithms",
    "quick_join",
]
